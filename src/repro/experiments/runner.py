"""Shared sweep machinery for the paper-reproduction experiments.

An :class:`ExperimentRunner` owns the run settings (instruction budget,
seed, benchmark list) and memoizes simulation results, so Table 3,
Table 4 and the section 6 cross-comparisons share runs of the same
configuration instead of re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..common.config import MachineConfig, PortModelConfig, paper_machine
from ..common.stats import weighted_average
from ..core.processor import Processor
from ..core.results import SimResult
from ..workloads.spec95 import ALL_NAMES, SPECFP_NAMES, SPECINT_NAMES, spec95_workload


@dataclass(frozen=True)
class RunSettings:
    """How much to simulate.

    The paper runs up to 1.5 G instructions per benchmark; the models
    here are stationary synthetics whose IPC converges within a few tens
    of thousands of instructions (see the convergence test), so the
    default budget keeps a full table under a few minutes of wall clock.
    """

    instructions: int = 20_000
    seed: int = 1
    benchmarks: Tuple[str, ...] = ALL_NAMES
    #: instructions fast-forwarded before timing begins (cache warm-up);
    #: sized to tour the largest resident working set of the models.
    warmup_instructions: int = 30_000
    #: budget for trace-level (functional) analyses - Table 2 and
    #: Figure 3 - which run ~50x faster than timing simulation and need
    #: longer streams to amortize cold-start misses.
    characterization_instructions: int = 120_000

    def __post_init__(self) -> None:
        unknown = set(self.benchmarks) - set(ALL_NAMES)
        if unknown:
            raise ValueError(f"unknown benchmarks: {sorted(unknown)}")


class ExperimentRunner:
    """Runs (benchmark, port-config) simulations with memoization."""

    def __init__(self, settings: Optional[RunSettings] = None) -> None:
        self.settings = settings or RunSettings()
        self._cache: Dict[Tuple[str, str], SimResult] = {}

    def result(self, benchmark: str, ports: PortModelConfig) -> SimResult:
        """Simulate one benchmark on the paper machine with ``ports``."""
        key = (benchmark, repr(ports))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        machine = paper_machine(ports)
        workload = spec95_workload(benchmark)
        processor = Processor(machine, label=f"{benchmark}/{ports.describe()}")
        result = processor.run(
            workload.stream(seed=self.settings.seed),
            max_instructions=self.settings.instructions,
            warmup_instructions=self.settings.warmup_instructions,
        )
        self._cache[key] = result
        return result

    def ipc(self, benchmark: str, ports: PortModelConfig) -> float:
        return self.result(benchmark, ports).ipc

    # -- aggregation -----------------------------------------------------------

    def suite_average(
        self, ports: PortModelConfig, names: Iterable[str]
    ) -> float:
        """Arithmetic-mean IPC over a benchmark suite (the paper's Ave.)."""
        ipcs = [self.ipc(name, ports) for name in names]
        return sum(ipcs) / len(ipcs) if ipcs else 0.0

    def specint_average(self, ports: PortModelConfig) -> float:
        names = [n for n in self.settings.benchmarks if n in SPECINT_NAMES]
        return self.suite_average(ports, names)

    def specfp_average(self, ports: PortModelConfig) -> float:
        names = [n for n in self.settings.benchmarks if n in SPECFP_NAMES]
        return self.suite_average(ports, names)

    @property
    def int_benchmarks(self) -> List[str]:
        return [n for n in self.settings.benchmarks if n in SPECINT_NAMES]

    @property
    def fp_benchmarks(self) -> List[str]:
        return [n for n in self.settings.benchmarks if n in SPECFP_NAMES]
