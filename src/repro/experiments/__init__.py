"""The experiment harness: one module per paper artifact, plus ablations."""

from .ablations import (
    CostPerformancePoint,
    SweepResult,
    ablate_bank_function,
    ablate_associativity,
    ablate_bank_porting,
    ablate_combining_policy,
    ablate_crossbar_latency,
    ablate_fill_port,
    ablate_interleaving,
    ablate_line_size,
    ablate_lsq_depth,
    ablate_memory_latency,
    ablate_store_queue,
    cost_performance,
    render_cost_performance,
)
from .comparisons import (
    ClaimCheck,
    ClaimReport,
    check_claims,
    render_section6_table,
    run_claim_checks,
)
from .figure3 import Figure3Result, render_bank_sweep, run_bank_sweep, run_figure3
from .paper_data import (
    TABLE3,
    TABLE3_AVERAGES,
    TABLE3_PORTS,
    TABLE4,
    TABLE4_AVERAGES,
    TABLE4_CONFIGS,
)
from .runner import ExperimentRunner, RunSettings
from .table2 import Table2Result, run_table2
from .table3 import Table3Result, port_config, run_table3
from .table4 import Table4Result, lbic_config, run_table4

__all__ = [
    "ClaimCheck",
    "ClaimReport",
    "CostPerformancePoint",
    "ExperimentRunner",
    "Figure3Result",
    "RunSettings",
    "SweepResult",
    "TABLE3",
    "TABLE3_AVERAGES",
    "TABLE3_PORTS",
    "TABLE4",
    "TABLE4_AVERAGES",
    "TABLE4_CONFIGS",
    "Table2Result",
    "Table3Result",
    "Table4Result",
    "ablate_bank_function",
    "ablate_associativity",
    "ablate_bank_porting",
    "ablate_combining_policy",
    "ablate_crossbar_latency",
    "ablate_fill_port",
    "ablate_interleaving",
    "ablate_line_size",
    "ablate_memory_latency",
    "ablate_lsq_depth",
    "ablate_store_queue",
    "check_claims",
    "render_section6_table",
    "cost_performance",
    "lbic_config",
    "port_config",
    "render_cost_performance",
    "run_claim_checks",
    "render_bank_sweep",
    "run_bank_sweep",
    "run_figure3",
    "run_table2",
    "run_table3",
    "run_table4",
]
