"""Simulation-as-a-service: the ``repro-lbic serve`` daemon.

A long-lived asyncio front door over the engine's existing substrate —
canonical config fingerprints, the content-addressed
:class:`~repro.engine.store.ResultStore`, a persistent
:class:`~repro.engine.executor.WorkerPool`, and
:class:`~repro.engine.telemetry.SweepTelemetry` — exposing an HTTP/JSON
API:

* ``POST /v1/simulate`` — simulation/sweep requests (single units, pack
  names, or inline machine configs through the mechanism registry);
  synchronous by default, ``?wait=false`` returns a job handle.
* ``GET /v1/jobs/<id>`` — job state with telemetry-derived progress.
* ``GET /metrics`` — Prometheus text exposition: service families
  (queue depth, in-flight dedup hits, request latency histogram, pool
  utilization) plus the finished-run utilization gauges from
  :func:`~repro.obs.metrics.prometheus_metrics`.
* ``GET /healthz`` — liveness and a configuration snapshot.

Serving discipline: store-hit requests answer directly from the result
store without touching the worker pool; cold requests queue FIFO-fair
onto a bounded backlog (overflow sheds with 429); identical in-flight
requests share one simulation (dedup by fingerprint).  See
``docs/service.md``.
"""

from .app import ServiceApp, run_server
from .jobs import Job, JobRegistry
from .metrics import LatencyHistogram, ServiceMetrics
from .queue import BacklogFullError, BoundedWorkQueue
from .service import SimulationService, UnitOutcome
from .wire import WireError, simulate_request

__all__ = [
    "BacklogFullError",
    "BoundedWorkQueue",
    "Job",
    "JobRegistry",
    "LatencyHistogram",
    "ServiceApp",
    "ServiceMetrics",
    "SimulationService",
    "UnitOutcome",
    "WireError",
    "run_server",
    "simulate_request",
]
