"""The daemon's core: in-flight dedup, fair dispatch, store fast path.

:class:`SimulationService` is the HTTP-free heart of ``repro-lbic
serve``.  It resolves work units with a strict discipline:

1. **Memory / store hits answer immediately.**  A fingerprint already
   in the in-process memo or the persistent
   :class:`~repro.engine.store.ResultStore` never touches the queue or
   the worker pool — the microsecond path.
2. **In-flight dedup.**  A unit whose fingerprint is already being
   simulated (for any client, including another unit of the same
   request) attaches to the existing run's future; two clients asking
   for the same unit share exactly one simulation and receive the
   bit-identical result.
3. **Fair, bounded admission.**  Only genuinely cold units enter the
   FIFO :class:`~repro.service.queue.BoundedWorkQueue`; when a request
   would overflow the backlog it is refused whole with
   :class:`~repro.service.queue.BacklogFullError` (HTTP 429) before any
   of it is enqueued.
4. **Persistent pool.**  A fixed set of dispatcher coroutines (one per
   pool worker) drains the queue onto a
   :class:`~repro.engine.executor.WorkerPool` created once at service
   startup — no per-request executor setup, which is exactly the cost
   :meth:`SimulationEngine._execute <repro.engine.executor.SimulationEngine._execute>`
   used to pay per ``run_units`` call.

Completed simulations land in the memo and the store before the
in-flight entry is retired, so a unit is always visible as exactly one
of {cached, in flight, cold} — there is no window where a concurrent
request could miss both and start a duplicate run.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.results import SimResult
from ..engine import ResultStore, WorkerPool, WorkUnit
from .jobs import Job, JobRegistry
from .metrics import ServiceMetrics
from .queue import BoundedWorkQueue
from .wire import SimulateRequest

#: amortization knobs ride the payload exactly as the engine sends them.


class _InFlight:
    """One running (or queued) simulation and everyone waiting on it."""

    __slots__ = ("unit", "future", "waiters")

    def __init__(self, unit: WorkUnit) -> None:
        self.unit = unit
        self.future: "asyncio.Future[Tuple[SimResult, float, Dict[str, float]]]" = (
            asyncio.get_running_loop().create_future()
        )
        self.waiters = 1


@dataclass(frozen=True)
class UnitOutcome:
    """How one requested unit resolved."""

    unit: WorkUnit
    result: SimResult
    #: ``memory`` / ``store`` (cache), ``inflight`` (shared someone
    #: else's run), or ``simulated`` (this request caused the run).
    source: str
    wall_time: float
    phases: Dict[str, float]
    saved_seconds: float = 0.0

    def to_record(self) -> Dict[str, Any]:
        return {
            "label": self.unit.label,
            "fingerprint": self.unit.fingerprint,
            "source": self.source,
            "wall_time": self.wall_time,
            "ipc": self.result.ipc,
            "result": self.result.to_dict(),
        }


class SimulationService:
    """Long-lived simulation front end (see module docstring)."""

    def __init__(
        self,
        *,
        store: Optional[ResultStore] = None,
        pool: Optional[WorkerPool] = None,
        backlog: int = 64,
        amortize: bool = True,
    ) -> None:
        self.store = store
        self.pool = pool if pool is not None else WorkerPool()
        self.queue = BoundedWorkQueue(backlog)
        self.jobs = JobRegistry()
        self.metrics = ServiceMetrics()
        self.amortize = amortize
        self.started = time.time()
        self._memory: Dict[str, Tuple[SimResult, float]] = {}
        self._inflight: Dict[str, _InFlight] = {}
        self._workers: List["asyncio.Task[None]"] = []
        #: most recent result carrying utilization metrics, with its
        #: (benchmark, ports) labels — re-exported on ``GET /metrics``.
        self.last_metrics: Optional[Tuple[Dict[str, Any], Dict[str, str]]] = None
        self.simulations = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Spawn one dispatcher coroutine per pool worker."""
        if self._workers:
            return
        for index in range(self.pool.jobs):
            self._workers.append(
                asyncio.create_task(self._dispatch_loop(), name=f"dispatch-{index}")
            )

    async def stop(self) -> None:
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers = []
        self.pool.close()

    # -- request handling --------------------------------------------------

    def submit(self, request: SimulateRequest, wait: bool = True) -> Job:
        """Admit one request: plan every unit, enqueue the cold ones.

        Raises :class:`BacklogFullError` (nothing enqueued, no job
        created) when the backlog cannot take the request's cold units.
        Returns the :class:`Job`; ``job.task`` resolves the units — the
        caller awaits it (sync mode) or leaves it running (job mode).
        """
        plan = self._plan(request)
        job = self.jobs.create(request.description, len(request.units))
        job.task = asyncio.create_task(self._resolve(job, request, plan))
        if not wait:
            # Background jobs report failures through their record; mark
            # the exception as retrieved so asyncio does not log it as
            # unobserved when nobody awaits the task.
            job.task.add_done_callback(
                lambda task: task.exception() if not task.cancelled() else None
            )
        return job

    def _plan(self, request: SimulateRequest) -> List[Tuple[str, Any]]:
        """Classify units (cached / attach / cold) and enqueue cold ones.

        Runs synchronously on the event loop: between the backlog
        reservation and the enqueues nothing yields, so admission is
        atomic with respect to other requests.
        """
        plan: List[Tuple[str, Any]] = []
        cold: List[_InFlight] = []
        claimed: Dict[str, _InFlight] = {}
        for unit in request.units:
            fingerprint = unit.fingerprint
            cached = self._probe(unit)
            if cached is not None:
                plan.append(("cached", cached))
                continue
            existing = self._inflight.get(fingerprint) or claimed.get(fingerprint)
            if existing is not None:
                existing.waiters += 1
                self.metrics.note_dedup_hit()
                plan.append(("attach", existing))
                continue
            item = _InFlight(unit)
            claimed[fingerprint] = item
            cold.append(item)
            plan.append(("cold", item))
        # All-or-nothing admission: reserve before anything is enqueued.
        self.queue.reserve(len(cold))
        for item in cold:
            self._inflight[item.unit.fingerprint] = item
            self.queue.put_nowait(item)
        return plan

    def _probe(
        self, unit: WorkUnit
    ) -> Optional[Tuple[str, SimResult, float]]:
        """Memo, then disk — the no-pool path."""
        fingerprint = unit.fingerprint
        hit = self._memory.get(fingerprint)
        if hit is not None and unit.satisfied_by(hit[0]):
            self.metrics.note_unit("memory")
            return ("memory",) + hit
        if self.store is not None:
            entry = self.store.get_entry(fingerprint)
            if entry is not None and unit.satisfied_by(entry[0]):
                self._memory[fingerprint] = entry
                self.metrics.note_unit("store")
                return ("store",) + entry
        return None

    async def _resolve(
        self, job: Job, request: SimulateRequest, plan: List[Tuple[str, Any]]
    ) -> List[UnitOutcome]:
        """Await every planned unit and finalize the job record."""
        job.start()
        outcomes: List[UnitOutcome] = []
        try:
            for (kind, item), unit in zip(plan, request.units):
                if kind == "cached":
                    source, result, stored_wall = item
                    outcome = UnitOutcome(
                        unit=unit,
                        result=result,
                        source=source,
                        wall_time=0.0,
                        phases={},
                        saved_seconds=stored_wall,
                    )
                    job.telemetry.note_savings(stored_wall)
                else:
                    result, wall, phases = await asyncio.shield(item.future)
                    source = "simulated" if kind == "cold" else "inflight"
                    outcome = UnitOutcome(
                        unit=unit,
                        result=result,
                        source=source,
                        wall_time=wall,
                        phases=phases,
                    )
                job.telemetry.add_unit(
                    unit.label, unit.fingerprint, outcome.source,
                    outcome.wall_time, outcome.phases,
                )
                job.unit_records.append(outcome.to_record())
                outcomes.append(outcome)
        except Exception as error:  # noqa: BLE001 - job boundary
            self.metrics.note_unit("failed")
            job.fail(f"{type(error).__name__}: {error}")
            raise
        job.complete()
        return outcomes

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """One pool slot: drain the queue FIFO, run, publish, retire."""
        while True:
            item = await self.queue.get()
            try:
                await self._run_item(item)
            finally:
                self.queue.task_done()

    async def _run_item(self, item: _InFlight) -> None:
        unit = item.unit
        payload = unit.payload()
        if self.amortize:
            payload["amortize"] = True
            if self.store is not None:
                payload["trace_root"] = str(self.store.root / "traces")
        try:
            outcome = await asyncio.wrap_future(self.pool.submit(payload))
            result = SimResult.from_dict(outcome["result"])
            wall = float(outcome.get("wall_time", 0.0))
            phases = dict(outcome.get("phases", {}))
        except Exception as error:  # noqa: BLE001 - worker boundary
            self._inflight.pop(unit.fingerprint, None)
            if not item.future.done():
                item.future.set_exception(error)
            return
        # Publish before retiring the in-flight entry: a unit is always
        # visible as cached or in flight, never neither.
        self._memory[unit.fingerprint] = (result, wall)
        if self.store is not None:
            mark = time.perf_counter()
            self.store.put(unit.fingerprint, unit.key(), result, wall)
            phases["store"] = time.perf_counter() - mark
        self.simulations += 1
        self.metrics.note_unit("simulated")
        metrics_payload = result.extra.get("metrics")
        if isinstance(metrics_payload, dict):
            benchmark, _, ports = unit.label.partition("/")
            self.last_metrics = (
                metrics_payload,
                {"benchmark": benchmark, "ports": ports},
            )
        self._inflight.pop(unit.fingerprint, None)
        if not item.future.done():
            item.future.set_result((result, wall, phases))

    # -- introspection -----------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self.started,
            "jobs": self.pool.jobs,
            "queue_depth": self.queue.depth,
            "backlog": self.queue.backlog,
            "inflight": len(self._inflight),
            "simulations": self.simulations,
            "store": str(self.store.root) if self.store is not None else None,
        }

    def render_metrics(self) -> str:
        """Service families plus the last run's utilization gauges."""
        text = self.metrics.render(
            queue_depth=self.queue.depth,
            shed=self.queue.shed,
            inflight=len(self._inflight),
            pool_workers=self.pool.jobs,
            pool_busy=self.pool.busy,
        )
        if self.last_metrics is not None:
            from ..obs.metrics import prometheus_metrics

            payload, labels = self.last_metrics
            text += prometheus_metrics(payload, labels=labels)
        return text
