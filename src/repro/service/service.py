"""The daemon's core: in-flight dedup, fair dispatch, store fast path.

:class:`SimulationService` is the HTTP-free heart of ``repro-lbic
serve``.  It resolves work units with a strict discipline:

1. **Memory / store hits answer immediately.**  A fingerprint already
   in the in-process memo or the persistent
   :class:`~repro.engine.store.ResultStore` never touches the queue or
   the worker pool — the microsecond path.
2. **In-flight dedup.**  A unit whose fingerprint is already being
   simulated (for any client, including another unit of the same
   request) attaches to the existing run's future; two clients asking
   for the same unit share exactly one simulation and receive the
   bit-identical result.
3. **Fair, bounded admission.**  Only genuinely cold units enter the
   FIFO :class:`~repro.service.queue.BoundedWorkQueue`; when a request
   would overflow the backlog it is refused whole with
   :class:`~repro.service.queue.BacklogFullError` (HTTP 429) before any
   of it is enqueued.
4. **Persistent pool.**  A fixed set of dispatcher coroutines (one per
   pool worker) drains the queue onto a
   :class:`~repro.engine.executor.WorkerPool` created once at service
   startup — no per-request executor setup, which is exactly the cost
   :meth:`SimulationEngine._execute <repro.engine.executor.SimulationEngine._execute>`
   used to pay per ``run_units`` call.

Completed simulations land in the memo and the store before the
in-flight entry is retired, so a unit is always visible as exactly one
of {cached, in flight, cold} — there is no window where a concurrent
request could miss both and start a duplicate run.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.results import SimResult
from ..engine import ResultStore, WorkerPool, WorkUnit
from ..obs.tracing import new_trace_id, span_record
from .jobs import Job, JobRegistry
from .metrics import ServiceMetrics
from .queue import BoundedWorkQueue
from .wire import SimulateRequest

#: amortization knobs ride the payload exactly as the engine sends them.


class _InFlight:
    """One running (or queued) simulation and everyone waiting on it."""

    __slots__ = ("unit", "future", "waiters", "enqueued", "ctx")

    def __init__(self, unit: WorkUnit) -> None:
        self.unit = unit
        self.future: "asyncio.Future[Tuple[SimResult, float, Dict[str, float]]]" = (
            asyncio.get_running_loop().create_future()
        )
        self.waiters = 1
        #: monotonic enqueue stamp — queue-wait accounting and the
        #: ``queue_wait`` span both measure from here.
        self.enqueued = 0.0
        #: ``(trace id, parent span id)`` of the unit span that created
        #: this run, or ``None`` when tracing is off.  Attached waiters
        #: share the run, so its spans belong to the *creating* trace.
        self.ctx: Optional[Tuple[str, str]] = None


@dataclass(frozen=True)
class UnitOutcome:
    """How one requested unit resolved."""

    unit: WorkUnit
    result: SimResult
    #: ``memory`` / ``store`` (cache), ``inflight`` (shared someone
    #: else's run), or ``simulated`` (this request caused the run).
    source: str
    wall_time: float
    phases: Dict[str, float]
    saved_seconds: float = 0.0

    def to_record(self) -> Dict[str, Any]:
        return {
            "label": self.unit.label,
            "fingerprint": self.unit.fingerprint,
            "source": self.source,
            "wall_time": self.wall_time,
            "ipc": self.result.ipc,
            "result": self.result.to_dict(),
        }


class SimulationService:
    """Long-lived simulation front end (see module docstring)."""

    def __init__(
        self,
        *,
        store: Optional[ResultStore] = None,
        pool: Optional[WorkerPool] = None,
        backlog: int = 64,
        amortize: bool = True,
        tracer=None,
    ) -> None:
        self.store = store
        #: an optional repro.obs.tracing.Tracer; when set, every request
        #: records a span tree — job → dedup decision → per-unit spans →
        #: queue wait → execute (worker phases, busy-loop sections) →
        #: store — all under one trace ID.  ``None`` (the default) keeps
        #: every instrumentation site to one ``is None`` test.
        self.tracer = tracer
        self.pool = pool if pool is not None else WorkerPool()
        self.queue = BoundedWorkQueue(backlog)
        self.jobs = JobRegistry()
        self.metrics = ServiceMetrics()
        self.amortize = amortize
        self.started = time.time()
        self._memory: Dict[str, Tuple[SimResult, float]] = {}
        self._inflight: Dict[str, _InFlight] = {}
        self._workers: List["asyncio.Task[None]"] = []
        #: most recent result carrying utilization metrics, with its
        #: (benchmark, ports) labels — re-exported on ``GET /metrics``.
        self.last_metrics: Optional[Tuple[Dict[str, Any], Dict[str, str]]] = None
        self.simulations = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Spawn one dispatcher coroutine per pool worker."""
        if self._workers:
            return
        for index in range(self.pool.jobs):
            self._workers.append(
                asyncio.create_task(self._dispatch_loop(), name=f"dispatch-{index}")
            )

    async def stop(self) -> None:
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers = []
        self.flush_spans()
        self.pool.close()

    def flush_spans(self):
        """Persist recorded spans under ``<store root>/traces-spans/``.

        Called after every job completes and at shutdown; a no-op (and
        cheap) when tracing is off, nothing is buffered, or the service
        has no persistent store.  Returns the JSONL path or ``None``.
        """
        if self.tracer is None or self.store is None or not len(self.tracer):
            return None
        from ..obs.tracing import flush_spans

        return flush_spans(self.store.root, self.tracer.drain())

    # -- request handling --------------------------------------------------

    def submit(
        self,
        request: SimulateRequest,
        wait: bool = True,
        trace_ctx: Optional[Tuple[str, Optional[str]]] = None,
    ) -> Job:
        """Admit one request: plan every unit, enqueue the cold ones.

        Raises :class:`BacklogFullError` (nothing enqueued, no job
        created) when the backlog cannot take the request's cold units.
        Returns the :class:`Job`; ``job.task`` resolves the units — the
        caller awaits it (sync mode) or leaves it running (job mode).

        ``trace_ctx`` is the caller's ``(trace id, parent span id)`` —
        the HTTP layer's request span.  A background (``wait=False``)
        job outlives its request, so its span becomes a *sibling root*
        on the same trace instead of a child (span trees stay properly
        nested either way).
        """
        tracer = self.tracer
        job_span = None
        if tracer is not None:
            trace, parent = trace_ctx if trace_ctx is not None else (
                new_trace_id(),
                None,
            )
            job_span = tracer.start(
                "job",
                trace=trace,
                parent=parent if wait else None,
                units=len(request.units),
                description=request.description,
            )
        try:
            plan = self._plan(request, job_span)
        except Exception as error:
            if job_span is not None:
                job_span.end(error=f"{type(error).__name__}: {error}")
            raise
        job = self.jobs.create(request.description, len(request.units))
        if job_span is not None:
            job_span.annotate(job=job.id)
            job.trace_id = job_span.trace
            job.span = job_span
        job.task = asyncio.create_task(self._resolve(job, request, plan))
        if not wait:
            # Background jobs report failures through their record; mark
            # the exception as retrieved so asyncio does not log it as
            # unobserved when nobody awaits the task.
            job.task.add_done_callback(
                lambda task: task.exception() if not task.cancelled() else None
            )
        return job

    def _plan(
        self, request: SimulateRequest, job_span=None
    ) -> List[Tuple[str, Any, Any]]:
        """Classify units (cached / attach / cold) and enqueue cold ones.

        Runs synchronously on the event loop: between the backlog
        reservation and the enqueues nothing yields, so admission is
        atomic with respect to other requests.

        Each plan entry is ``(kind, item, unit span)`` — the unit span
        (``None`` with tracing off) opens here, when the dedup decision
        is made, and is ended by :meth:`_resolve` when the unit's result
        lands, so its duration is the unit's full request-side latency.
        """
        tracer = self.tracer
        dedup_span = (
            tracer.start(
                "dedup", trace=job_span.trace, parent=job_span.span
            )
            if job_span is not None
            else None
        )
        outcomes = {"memo": 0, "store": 0, "inflight": 0, "cold": 0}

        def unit_span(unit: WorkUnit, outcome: str):
            outcomes[outcome] += 1
            self.metrics.note_outcome(outcome)
            if job_span is None:
                return None
            return tracer.start(
                "unit",
                trace=job_span.trace,
                parent=job_span.span,
                label=unit.label,
                outcome=outcome,
            )

        plan: List[Tuple[str, Any, Any]] = []
        cold: List[Tuple[_InFlight, Any]] = []
        claimed: Dict[str, _InFlight] = {}
        try:
            for unit in request.units:
                fingerprint = unit.fingerprint
                cached = self._probe(unit)
                if cached is not None:
                    kind = "memo" if cached[0] == "memory" else "store"
                    plan.append(("cached", cached, unit_span(unit, kind)))
                    continue
                existing = self._inflight.get(fingerprint) or claimed.get(
                    fingerprint
                )
                if existing is not None:
                    existing.waiters += 1
                    self.metrics.note_dedup_hit()
                    plan.append(
                        ("attach", existing, unit_span(unit, "inflight"))
                    )
                    continue
                item = _InFlight(unit)
                claimed[fingerprint] = item
                span = unit_span(unit, "cold")
                cold.append((item, span))
                plan.append(("cold", item, span))
            # All-or-nothing admission: reserve before anything is
            # enqueued.
            self.queue.reserve(len(cold))
        finally:
            # The dedup decision span always closes — a shed request
            # (BacklogFullError propagating to a 429) records what it
            # classified before being refused.
            if dedup_span is not None:
                dedup_span.end(**outcomes)
        for item, span in cold:
            if span is not None:
                item.ctx = (span.trace, span.span)
            item.enqueued = time.monotonic()
            self._inflight[item.unit.fingerprint] = item
            self.queue.put_nowait(item)
        return plan

    def _probe(
        self, unit: WorkUnit
    ) -> Optional[Tuple[str, SimResult, float]]:
        """Memo, then disk — the no-pool path."""
        fingerprint = unit.fingerprint
        hit = self._memory.get(fingerprint)
        if hit is not None and unit.satisfied_by(hit[0]):
            self.metrics.note_unit("memory")
            return ("memory",) + hit
        if self.store is not None:
            entry = self.store.get_entry(fingerprint)
            if entry is not None and unit.satisfied_by(entry[0]):
                self._memory[fingerprint] = entry
                self.metrics.note_unit("store")
                return ("store",) + entry
        return None

    async def _resolve(
        self,
        job: Job,
        request: SimulateRequest,
        plan: List[Tuple[str, Any, Any]],
    ) -> List[UnitOutcome]:
        """Await every planned unit and finalize the job record."""
        job.start()
        outcomes: List[UnitOutcome] = []
        try:
            for (kind, item, span), unit in zip(plan, request.units):
                if kind == "cached":
                    source, result, stored_wall = item
                    outcome = UnitOutcome(
                        unit=unit,
                        result=result,
                        source=source,
                        wall_time=0.0,
                        phases={},
                        saved_seconds=stored_wall,
                    )
                    job.telemetry.note_savings(stored_wall)
                else:
                    result, wall, phases = await asyncio.shield(item.future)
                    source = "simulated" if kind == "cold" else "inflight"
                    outcome = UnitOutcome(
                        unit=unit,
                        result=result,
                        source=source,
                        wall_time=wall,
                        phases=phases,
                    )
                if span is not None:
                    span.end(source=outcome.source)
                job.telemetry.add_unit(
                    unit.label, unit.fingerprint, outcome.source,
                    outcome.wall_time, outcome.phases,
                )
                job.unit_records.append(outcome.to_record())
                outcomes.append(outcome)
        except Exception as error:  # noqa: BLE001 - job boundary
            self.metrics.note_unit("failed")
            job.fail(f"{type(error).__name__}: {error}")
            if job.span is not None:
                job.span.end(state="failed")
                job.span = None
            self.flush_spans()
            raise
        job.complete()
        if job.span is not None:
            job.span.end(state="done")
            job.span = None
        self.flush_spans()
        return outcomes

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """One pool slot: drain the queue FIFO, run, publish, retire."""
        while True:
            item = await self.queue.get()
            try:
                await self._run_item(item)
            finally:
                self.queue.task_done()

    async def _run_item(self, item: _InFlight) -> None:
        unit = item.unit
        tracer = self.tracer
        # Queue wait: enqueue → this dispatcher picking the item up.
        waited = time.monotonic() - item.enqueued if item.enqueued else 0.0
        self.metrics.observe_queue_wait(waited)
        exec_span = None
        if tracer is not None and item.ctx is not None:
            trace, parent = item.ctx
            tracer.add(
                span_record(
                    trace, parent, "queue_wait", item.enqueued, waited
                )
            )
            exec_span = tracer.start(
                "execute",
                trace=trace,
                parent=parent,
                backend=unit.backend,
                label=unit.label,
            )
        payload = unit.payload()
        if self.amortize:
            payload["amortize"] = True
            if self.store is not None:
                payload["trace_root"] = str(self.store.root / "traces")
        if exec_span is not None:
            payload["trace_spans"] = {
                "trace": exec_span.trace,
                "parent": exec_span.span,
            }
        try:
            outcome = await asyncio.wrap_future(self.pool.submit(payload))
            result = SimResult.from_dict(outcome["result"])
            wall = float(outcome.get("wall_time", 0.0))
            phases = dict(outcome.get("phases", {}))
        except Exception as error:  # noqa: BLE001 - worker boundary
            if exec_span is not None:
                exec_span.end(error=f"{type(error).__name__}: {error}")
            self._inflight.pop(unit.fingerprint, None)
            if not item.future.done():
                item.future.set_exception(error)
            return
        if exec_span is not None:
            tracer.adopt(outcome.get("spans", ()))
        # Publish before retiring the in-flight entry: a unit is always
        # visible as cached or in flight, never neither.
        self._memory[unit.fingerprint] = (result, wall)
        if self.store is not None:
            store_span = (
                tracer.start(
                    "store",
                    trace=exec_span.trace,
                    parent=exec_span.span,
                    label=unit.label,
                )
                if exec_span is not None
                else None
            )
            mark = time.perf_counter()
            self.store.put(unit.fingerprint, unit.key(), result, wall)
            phases["store"] = time.perf_counter() - mark
            if store_span is not None:
                store_span.end()
        if exec_span is not None:
            exec_span.end()
        self.simulations += 1
        self.metrics.note_unit("simulated")
        self.metrics.observe_backend(unit.backend, wall)
        for phase, seconds in phases.items():
            self.metrics.observe_phase(phase, seconds)
        metrics_payload = result.extra.get("metrics")
        if isinstance(metrics_payload, dict):
            benchmark, _, ports = unit.label.partition("/")
            self.last_metrics = (
                metrics_payload,
                {"benchmark": benchmark, "ports": ports},
            )
        self._inflight.pop(unit.fingerprint, None)
        if not item.future.done():
            item.future.set_result((result, wall, phases))

    # -- introspection -----------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self.started,
            "jobs": self.pool.jobs,
            "queue_depth": self.queue.depth,
            "backlog": self.queue.backlog,
            "inflight": len(self._inflight),
            "simulations": self.simulations,
            "store": str(self.store.root) if self.store is not None else None,
        }

    def render_metrics(self) -> str:
        """Service families plus the last run's utilization gauges."""
        text = self.metrics.render(
            queue_depth=self.queue.depth,
            shed=self.queue.shed,
            inflight=len(self._inflight),
            pool_workers=self.pool.jobs,
            pool_busy=self.pool.busy,
            queue_depth_peak=self.queue.peak_depth,
        )
        if self.last_metrics is not None:
            from ..obs.metrics import prometheus_metrics

            payload, labels = self.last_metrics
            text += prometheus_metrics(payload, labels=labels)
        return text
