"""Job records: every ``POST /v1/simulate`` becomes one trackable job.

A job exists whether the client waits (synchronous mode) or polls
(``?wait=false``): the handler that resolves the units is the same
coroutine either way, so a synchronous response body and a completed
job record carry identical data.  Progress is derived from the job's
own :class:`~repro.engine.telemetry.SweepTelemetry` — each resolved
unit folds its phase spans (materialize/warmup/simulate/store...) into
the record the ``GET /v1/jobs/<id>`` endpoint reports.
"""

from __future__ import annotations

import itertools
import secrets
import time
from typing import Any, Dict, List, Optional

from ..engine import SweepTelemetry

#: finished jobs kept for polling before the registry prunes them.
KEEP_FINISHED = 256

#: job lifecycle states, in order.
STATES = ("queued", "running", "done", "failed")


class Job:
    """One simulate request's lifecycle, progress, and results."""

    def __init__(self, job_id: str, description: str, total: int) -> None:
        self.id = job_id
        self.description = description
        self.total = total
        self.state = "queued"
        self.created = time.time()
        self.finished: Optional[float] = None
        self.error: Optional[str] = None
        #: per-unit phase spans and sources accumulate here as units
        #: resolve; the jobs endpoint derives progress from it.
        self.telemetry = SweepTelemetry()
        self.unit_records: List[Dict[str, Any]] = []
        #: the asyncio task resolving this job's units (set by the
        #: service); synchronous requests await it, job mode polls.
        self.task: Optional[Any] = None
        #: the span-trace ID covering this job (set by the service when
        #: tracing is on); lets a client join its response/job record
        #: with the exported spans and the daemon's JSON logs.
        self.trace_id: Optional[str] = None
        #: the job's live span (ended by the service on completion).
        self.span: Optional[Any] = None

    def start(self) -> None:
        self.state = "running"

    def complete(self) -> None:
        self.state = "done"
        self.finished = time.time()

    def fail(self, error: str) -> None:
        self.state = "failed"
        self.error = error
        self.finished = time.time()

    @property
    def is_finished(self) -> bool:
        return self.state in ("done", "failed")

    def to_dict(self, include_results: bool = True) -> Dict[str, Any]:
        """The job record the HTTP layer returns, JSON-safe."""
        record: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "description": self.description,
            "created": self.created,
            "progress": self.telemetry.progress(self.total),
        }
        if self.trace_id is not None:
            record["trace"] = self.trace_id
        if self.finished is not None:
            record["elapsed_seconds"] = self.finished - self.created
        if self.error is not None:
            record["error"] = self.error
        if include_results and self.state == "done":
            record["units"] = list(self.unit_records)
        return record


class JobRegistry:
    """In-memory job directory with bounded retention.

    Unfinished jobs are never pruned; finished jobs are kept (newest
    first) up to ``keep_finished`` so pollers have a grace window after
    completion, and the registry cannot grow without bound under
    sustained traffic.
    """

    def __init__(self, keep_finished: int = KEEP_FINISHED) -> None:
        self.keep_finished = keep_finished
        self._jobs: Dict[str, Job] = {}
        self._counter = itertools.count(1)

    def create(self, description: str, total: int) -> Job:
        job_id = f"job-{next(self._counter):06d}-{secrets.token_hex(4)}"
        job = Job(job_id, description, total)
        self._jobs[job_id] = job
        self._prune()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def __len__(self) -> int:
        return len(self._jobs)

    def _prune(self) -> None:
        finished = [job for job in self._jobs.values() if job.is_finished]
        excess = len(finished) - self.keep_finished
        if excess <= 0:
            return
        finished.sort(key=lambda job: job.finished or 0.0)
        for job in finished[:excess]:
            self._jobs.pop(job.id, None)
