"""The daemon's admission queue: FIFO-fair, bounded, load-shedding.

Cold work (no store entry, no identical run already in flight) is the
only thing that ever enters this queue; store hits and dedup joins are
answered without touching it.  The queue is strictly FIFO — requests
are served in arrival order regardless of which client sent them — and
strictly bounded: when admitting a request's cold units would push the
backlog past its limit, the *whole request* is refused up front with
:class:`BacklogFullError` (HTTP 429) rather than enqueueing half of it.
Refusing before enqueueing anything keeps rejected requests free of
side effects, so clients can retry them verbatim.
"""

from __future__ import annotations

import asyncio
from typing import Any

from ..common.errors import ReproError


class BacklogFullError(ReproError):
    """Admitting the request would overflow the backlog (HTTP 429)."""


class BoundedWorkQueue:
    """An asyncio FIFO queue with all-or-nothing admission.

    ``reserve(n)`` checks capacity for a batch *before* anything is
    enqueued; because the event loop never yields between the check and
    the subsequent ``put_nowait`` calls (both are synchronous), a
    reservation cannot be invalidated by a concurrent request.
    """

    def __init__(self, backlog: int) -> None:
        if backlog < 1:
            raise ValueError("backlog must be >= 1")
        self.backlog = backlog
        self._queue: "asyncio.Queue[Any]" = asyncio.Queue()
        #: requests refused because the backlog was full.
        self.shed = 0
        #: deepest the backlog has ever been — the
        #: ``repro_service_queue_depth_peak`` gauge, so a scrape that
        #: always lands on an idle queue still reveals burst pressure.
        self.peak_depth = 0

    @property
    def depth(self) -> int:
        """Items currently waiting (not yet claimed by a worker)."""
        return self._queue.qsize()

    def reserve(self, count: int) -> None:
        """Raise :class:`BacklogFullError` unless ``count`` more items
        fit; callers must enqueue synchronously after a reservation."""
        if self.depth + count > self.backlog:
            self.shed += 1
            raise BacklogFullError(
                f"backlog full: {self.depth} queued + {count} requested "
                f"> limit {self.backlog}; retry later"
            )

    def put_nowait(self, item: Any) -> None:
        self._queue.put_nowait(item)
        depth = self._queue.qsize()
        if depth > self.peak_depth:
            self.peak_depth = depth

    async def get(self) -> Any:
        return await self._queue.get()

    def task_done(self) -> None:
        self._queue.task_done()
