"""The HTTP/JSON front door: a dependency-free asyncio server.

The daemon speaks a deliberately small slice of HTTP/1.1 over
``asyncio.start_server`` — request line, headers, ``Content-Length``
body, ``Connection: close`` responses — because the toolchain ships no
HTTP framework and the four endpoints need nothing more.  All JSON in,
JSON out (``/metrics`` and ``/healthz`` excepted).

Routes::

    POST /v1/simulate[?wait=false]   simulate/sweep request
    GET  /v1/jobs/<id>               job state + telemetry progress
    GET  /metrics                    Prometheus text exposition
    GET  /healthz                    liveness + config snapshot

Error mapping: malformed body/spec -> 400 (:class:`WireError`), unknown
route or job -> 404, backlog overflow -> 429
(:class:`BacklogFullError`), failed simulation -> 500.  Every response
is recorded in the request-latency histogram.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..engine import ResultStore, WorkerPool
from ..obs.jsonlog import JsonLogger
from .queue import BacklogFullError
from .service import SimulationService
from .wire import WireError, simulate_request

#: request size guards.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServiceApp:
    """Bind a :class:`SimulationService` to a TCP listener."""

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = 8023,
        log: Optional[JsonLogger] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        #: structured JSON access/lifecycle logging; ``None`` is silent
        #: (the mode every test uses).
        self.log = log
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        """Start the dispatchers and listen; updates :attr:`port` with
        the bound port (useful when constructed with ``port=0``)."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def __aenter__(self) -> "ServiceApp":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = time.perf_counter()
        endpoint = "unknown"
        method = "?"
        status = 0
        tracer = self.service.tracer
        # The request root span: accept → parse → route → handler.  Its
        # trace ID threads through the job record, the JSON access log,
        # and every descendant span down to the busy loop.
        request_span = tracer.start("request") if tracer is not None else None
        trace_id = request_span.trace if request_span is not None else None
        try:
            try:
                method, target, body = await self._read_request(reader)
                endpoint, status, payload, content_type = await self._route(
                    method, target, body, request_span
                )
            except _HttpError as error:
                status = error.status
                payload = json.dumps({"error": str(error)}) + "\n"
                content_type = "application/json"
            except Exception as error:  # noqa: BLE001 - server boundary
                status = 500
                payload = (
                    json.dumps({"error": f"{type(error).__name__}: {error}"}) + "\n"
                )
                content_type = "application/json"
            if request_span is not None:
                request_span.end(endpoint=endpoint, status=status)
                request_span = None
                self.service.flush_spans()
            await self._write_response(writer, status, payload, content_type)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if request_span is not None:  # connection died mid-request
                request_span.end(endpoint=endpoint, status=status)
                self.service.flush_spans()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            seconds = time.perf_counter() - started
            self.service.metrics.note_request(endpoint, status, seconds)
            if self.log is not None:
                self.log.event(
                    "request",
                    trace=trace_id,
                    method=method,
                    endpoint=endpoint,
                    status=status,
                    seconds=round(seconds, 6),
                )

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError as error:
            raise _HttpError(413, "headers too large") from error
        if len(head) > MAX_HEADER_BYTES:
            raise _HttpError(413, "headers too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line: {lines[0]!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError as error:
            raise _HttpError(400, f"bad Content-Length: {length_text!r}") from error
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: str,
        content_type: str,
    ) -> None:
        body = payload.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- routing -----------------------------------------------------------

    async def _route(
        self, method: str, target: str, body: bytes, request_span=None
    ) -> Tuple[str, int, str, str]:
        """Dispatch one request; returns (endpoint, status, body, type)."""
        split = urlsplit(target)
        path = split.path
        query = parse_qs(split.query)
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "GET only")
            return (
                "/healthz",
                200,
                json.dumps(self.service.health(), sort_keys=True) + "\n",
                "application/json",
            )
        if path == "/metrics":
            if method != "GET":
                raise _HttpError(405, "GET only")
            return (
                "/metrics",
                200,
                self.service.render_metrics(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if path == "/v1/simulate":
            if method != "POST":
                raise _HttpError(405, "POST only")
            wait_values = [v.lower() for v in query.get("wait", ["true"])]
            wait = wait_values[-1] not in ("false", "0", "no")
            status, payload = await self._simulate(body, wait, request_span)
            return (
                "/v1/simulate",
                status,
                json.dumps(payload, sort_keys=True) + "\n",
                "application/json",
            )
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                raise _HttpError(405, "GET only")
            job = self.service.jobs.get(path[len("/v1/jobs/"):])
            if job is None:
                raise _HttpError(404, "no such job")
            return (
                "/v1/jobs",
                200,
                json.dumps(job.to_dict(), sort_keys=True) + "\n",
                "application/json",
            )
        raise _HttpError(404, f"no route for {method} {path}")

    async def _simulate(
        self, body: bytes, wait: bool, request_span=None
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            data = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, ValueError) as error:
            raise _HttpError(400, f"body is not valid JSON: {error}") from error
        try:
            request = simulate_request(data)
        except WireError as error:
            raise _HttpError(400, str(error)) from error
        trace_ctx = (
            (request_span.trace, request_span.span)
            if request_span is not None
            else None
        )
        try:
            job = self.service.submit(request, wait=wait, trace_ctx=trace_ctx)
        except BacklogFullError as error:
            raise _HttpError(429, str(error)) from error
        if not wait:
            record: Dict[str, Any] = {
                "job": job.id,
                "state": job.state,
                "total": job.total,
                "url": f"/v1/jobs/{job.id}",
            }
            if job.trace_id is not None:
                record["trace"] = job.trace_id
            return 202, record
        try:
            await job.task
        except Exception as error:  # noqa: BLE001 - request boundary
            raise _HttpError(
                500, f"simulation failed: {type(error).__name__}: {error}"
            ) from error
        return 200, job.to_dict()


def run_server(
    host: str = "127.0.0.1",
    port: int = 8023,
    *,
    jobs: Optional[int] = None,
    backlog: int = 64,
    store: Optional[ResultStore] = None,
    use_store: bool = True,
    amortize: bool = True,
    trace_spans: bool = False,
) -> int:
    """Blocking entry point for ``repro-lbic serve``.

    Creates the persistent :class:`~repro.engine.executor.WorkerPool`
    once, binds the listener, and serves until interrupted; the pool and
    dispatchers shut down cleanly on Ctrl-C.  All daemon output is
    structured JSON logging (one object per line on stdout); with
    ``trace_spans`` every request additionally records a span trace
    under ``<store root>/traces-spans/`` (see docs/observability.md).
    """
    if store is None and use_store:
        store = ResultStore()
    pool = WorkerPool(jobs)
    tracer = None
    if trace_spans:
        from ..obs.tracing import Tracer

        tracer = Tracer()
    service = SimulationService(
        store=store, pool=pool, backlog=backlog, amortize=amortize,
        tracer=tracer,
    )
    log = JsonLogger()

    async def _main() -> None:
        app = ServiceApp(service, host=host, port=port, log=log)
        async with app:
            log.event(
                "serve.listening",
                url=f"http://{app.host}:{app.port}",
                workers=pool.jobs,
                backlog=backlog,
                store=str(store.root) if store is not None else None,
                trace_spans=trace_spans,
            )
            await app.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        log.event("serve.shutdown")
    return 0
