"""Service metric families for the daemon's ``GET /metrics``.

Everything renders through the same text-exposition helpers the
finished-run gauges use (:func:`~repro.obs.metrics.prometheus_sample`),
so one scrape combines live service counters with
:func:`~repro.obs.metrics.prometheus_metrics` output for the most
recent metrics-carrying result.

Families:

* ``repro_service_requests_total{endpoint,status}`` — counter
* ``repro_service_units_total{source}`` — counter: how each unit resolved
  (``memory`` / ``store`` / ``inflight`` / ``simulated`` / ``failed``)
* ``repro_service_inflight_dedup_hits_total`` — counter
* ``repro_service_backlog_shed_total`` — counter (429s)
* ``repro_service_queue_depth`` / ``repro_service_inflight`` — gauges
* ``repro_service_pool_workers`` / ``repro_service_pool_busy`` /
  ``repro_service_pool_utilization`` — gauges
* ``repro_service_request_seconds`` — histogram (cumulative ``le``
  buckets, ``_sum``, ``_count``)
* ``repro_service_dedup_outcomes_total{outcome}`` — counter: the dedup
  decision per planned unit (``memo`` / ``store`` / ``inflight`` /
  ``cold``)
* ``repro_service_queue_depth_peak`` — gauge: backlog high-water mark
* ``repro_service_queue_wait_seconds`` — histogram: enqueue → dispatch
* ``repro_service_phase_seconds{phase}`` — histogram per engine phase
  (materialize / warmup / simulate / store)
* ``repro_service_unit_seconds{backend}`` — histogram: simulation wall
  time per timing backend
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..obs.metrics import format_sample_value, prometheus_sample

#: request-latency bucket upper bounds (seconds).  The decades span
#: microsecond-class store hits through multi-second cold sweeps.
LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


class LatencyHistogram:
    """A fixed-bucket Prometheus histogram (cumulative on render)."""

    def __init__(self, buckets: Tuple[float, ...] = LATENCY_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # trailing +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        for index, bound in enumerate(self.buckets):
            if seconds <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def sample_lines(self, name: str, labels: Mapping[str, str]) -> List[str]:
        """The samples only (no ``# TYPE`` header) — lets one histogram
        family carry several label sets (per-phase, per-backend) under a
        single header, as the exposition format requires."""
        lines = []
        cumulative = 0
        for bound, count in zip(self.buckets, self.counts):
            cumulative += count
            lines.append(
                prometheus_sample(
                    f"{name}_bucket",
                    cumulative,
                    {**labels, "le": format_sample_value(bound)},
                )
            )
        lines.append(
            prometheus_sample(
                f"{name}_bucket", self.count, {**labels, "le": "+Inf"}
            )
        )
        lines.append(prometheus_sample(f"{name}_sum", self.total, dict(labels)))
        lines.append(prometheus_sample(f"{name}_count", self.count, dict(labels)))
        return lines

    def render(self, name: str, labels: Mapping[str, str]) -> List[str]:
        return [f"# TYPE {name} histogram"] + self.sample_lines(name, labels)


class ServiceMetrics:
    """Counters, gauges, and the request-latency histogram."""

    def __init__(self) -> None:
        self.requests: Dict[Tuple[str, int], int] = {}
        self.units_by_source: Dict[str, int] = {}
        self.dedup_hits = 0
        self.latency = LatencyHistogram()
        #: dedup decision per planned unit: memo / store / inflight / cold
        self.dedup_outcomes: Dict[str, int] = {}
        self.queue_wait = LatencyHistogram()
        self.phase_seconds: Dict[str, LatencyHistogram] = {}
        self.backend_seconds: Dict[str, LatencyHistogram] = {}

    def note_request(self, endpoint: str, status: int, seconds: float) -> None:
        key = (endpoint, status)
        self.requests[key] = self.requests.get(key, 0) + 1
        self.latency.observe(seconds)

    def note_unit(self, source: str) -> None:
        self.units_by_source[source] = self.units_by_source.get(source, 0) + 1

    def note_dedup_hit(self) -> None:
        self.dedup_hits += 1
        self.note_unit("inflight")

    def note_outcome(self, outcome: str) -> None:
        """Count one dedup decision (``memo``/``store``/``inflight``/``cold``)."""
        self.dedup_outcomes[outcome] = self.dedup_outcomes.get(outcome, 0) + 1

    def observe_queue_wait(self, seconds: float) -> None:
        self.queue_wait.observe(seconds)

    def observe_phase(self, phase: str, seconds: float) -> None:
        hist = self.phase_seconds.get(phase)
        if hist is None:
            hist = self.phase_seconds[phase] = LatencyHistogram()
        hist.observe(seconds)

    def observe_backend(self, backend: str, seconds: float) -> None:
        hist = self.backend_seconds.get(backend)
        if hist is None:
            hist = self.backend_seconds[backend] = LatencyHistogram()
        hist.observe(seconds)

    def render(
        self,
        *,
        queue_depth: int,
        shed: int,
        inflight: int,
        pool_workers: int,
        pool_busy: int,
        queue_depth_peak: int = 0,
    ) -> str:
        """The live service families, Prometheus text exposition."""
        lines = ["# TYPE repro_service_requests_total counter"]
        for (endpoint, status), count in sorted(self.requests.items()):
            lines.append(
                prometheus_sample(
                    "repro_service_requests_total",
                    count,
                    {"endpoint": endpoint, "status": str(status)},
                )
            )
        lines.append("# TYPE repro_service_units_total counter")
        for source, count in sorted(self.units_by_source.items()):
            lines.append(
                prometheus_sample(
                    "repro_service_units_total", count, {"source": source}
                )
            )
        lines.append("# TYPE repro_service_inflight_dedup_hits_total counter")
        lines.append(
            prometheus_sample(
                "repro_service_inflight_dedup_hits_total", self.dedup_hits
            )
        )
        lines.append("# TYPE repro_service_backlog_shed_total counter")
        lines.append(prometheus_sample("repro_service_backlog_shed_total", shed))
        lines.append("# TYPE repro_service_dedup_outcomes_total counter")
        for outcome, count in sorted(self.dedup_outcomes.items()):
            lines.append(
                prometheus_sample(
                    "repro_service_dedup_outcomes_total",
                    count,
                    {"outcome": outcome},
                )
            )
        lines.append("# TYPE repro_service_queue_depth gauge")
        lines.append(prometheus_sample("repro_service_queue_depth", queue_depth))
        lines.append("# TYPE repro_service_queue_depth_peak gauge")
        lines.append(
            prometheus_sample("repro_service_queue_depth_peak", queue_depth_peak)
        )
        lines.append("# TYPE repro_service_inflight gauge")
        lines.append(prometheus_sample("repro_service_inflight", inflight))
        lines.append("# TYPE repro_service_pool_workers gauge")
        lines.append(prometheus_sample("repro_service_pool_workers", pool_workers))
        lines.append("# TYPE repro_service_pool_busy gauge")
        lines.append(prometheus_sample("repro_service_pool_busy", pool_busy))
        lines.append("# TYPE repro_service_pool_utilization gauge")
        lines.append(
            prometheus_sample(
                "repro_service_pool_utilization",
                pool_busy / pool_workers if pool_workers else 0.0,
            )
        )
        lines.extend(
            self.latency.render("repro_service_request_seconds", {})
        )
        if self.queue_wait.count:
            lines.extend(
                self.queue_wait.render("repro_service_queue_wait_seconds", {})
            )
        if self.phase_seconds:
            lines.append("# TYPE repro_service_phase_seconds histogram")
            for phase, hist in sorted(self.phase_seconds.items()):
                lines.extend(
                    hist.sample_lines(
                        "repro_service_phase_seconds", {"phase": phase}
                    )
                )
        if self.backend_seconds:
            lines.append("# TYPE repro_service_unit_seconds histogram")
            for backend, hist in sorted(self.backend_seconds.items()):
                lines.extend(
                    hist.sample_lines(
                        "repro_service_unit_seconds", {"backend": backend}
                    )
                )
        return "\n".join(lines) + "\n"
