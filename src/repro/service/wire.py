"""Wire schemas: JSON request bodies -> engine work units.

``POST /v1/simulate`` accepts three request shapes, all resolving to a
list of ordinary :class:`~repro.engine.executor.WorkUnit`\\ s so the
daemon's dedup, store probing, and pool dispatch treat every client the
same way the CLI's experiments are treated:

* a **single unit**::

      {"benchmark": "swim", "ports": "lbic:4x4", "instructions": 20000}

* an explicit **unit list** (top-level settings act as defaults)::

      {"seed": 2, "units": [{"benchmark": "gcc", "ports": "bank:4"},
                            {"benchmark": "swim", "machine": {...}}]}

* a shipped **experiment pack** (the registry/pack deserializers)::

      {"pack": "replacement-policies", "quick": true}

A unit names its machine either with a ``ports`` spec string (the CLI's
``ideal:N | repl:N | bank:M | lbic:MxN[:sqD]`` grammar) or an inline
``machine`` dict routed through the mechanism registry — a full
machine via :func:`~repro.common.config.machine_config_from_dict`, or
the ``{"machine": {"ports": {"kind": ..., ...}}}`` shorthand that puts
a registry-built port model on the paper baseline — so unknown
mechanism names fail with the list of valid alternatives.  Anything malformed raises :class:`WireError`,
which the HTTP layer renders as a 400.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..common.config import (
    machine_config_from_dict,
    paper_machine,
    port_model_from_dict,
)
from ..common.errors import ConfigError, ReproError
from ..engine import RunSettings, WorkUnit
from ..workloads.spec95 import ALL_NAMES


class WireError(ReproError):
    """A malformed service request (rendered as HTTP 400)."""


#: settings keys a request (or one unit spec) may carry.
_SETTINGS_KEYS = (
    "instructions",
    "warmup_instructions",
    "seed",
    "observe",
    "metrics",
    "backend",
)

#: unit-identity keys, on top of the settings keys.
_UNIT_KEYS = _SETTINGS_KEYS + ("benchmark", "ports", "machine")

#: top-level request keys across all three shapes.
_REQUEST_KEYS = _UNIT_KEYS + ("units", "pack", "quick")

_SETTINGS_TYPES = {
    "instructions": int,
    "warmup_instructions": int,
    "seed": int,
    "observe": bool,
    "metrics": bool,
    "backend": str,
}


@dataclass(frozen=True)
class SimulateRequest:
    """One parsed ``POST /v1/simulate`` body."""

    units: Tuple[WorkUnit, ...]
    #: what the request asked for, echoed into job records.
    description: str
    #: per-unit (benchmark, ports-description) label pairs for metrics.
    labels: Tuple[Tuple[str, str], ...] = field(default=())


def _require_mapping(data: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise WireError(f"{what} must be a JSON object, got {type(data).__name__}")
    return data


def _check_keys(data: Mapping[str, Any], allowed: Tuple[str, ...], what: str) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        raise WireError(
            f"{what} has unknown key(s) {sorted(unknown)}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


def _settings_values(data: Mapping[str, Any], what: str) -> Dict[str, Any]:
    values: Dict[str, Any] = {}
    for key in _SETTINGS_KEYS:
        if key not in data:
            continue
        value = data[key]
        expected = _SETTINGS_TYPES[key]
        if expected is int and (isinstance(value, bool) or not isinstance(value, int)):
            raise WireError(f"{what}: {key!r} must be an integer, got {value!r}")
        if expected is bool and not isinstance(value, bool):
            raise WireError(f"{what}: {key!r} must be a boolean, got {value!r}")
        if expected is str:
            if not isinstance(value, str):
                raise WireError(f"{what}: {key!r} must be a string, got {value!r}")
            if key == "backend":
                _check_backend(value, what)
        values[key] = value
    return values


def _check_backend(name: str, what: str) -> None:
    """Validate a backend name against the registry (400 on unknowns,
    listing the registered alternatives)."""
    from ..common.registry import mechanism_names
    from ..core import backends  # noqa: F401  (registers the backends)

    known = mechanism_names("backend")
    if name not in known:
        raise WireError(
            f"{what}: unknown backend {name!r}; "
            f"choose from {', '.join(sorted(known))}"
        )


def _parse_ports_spec(spec: Any, what: str):
    from ..cli import parse_ports

    if not isinstance(spec, str):
        raise WireError(f"{what}: 'ports' must be a spec string, got {spec!r}")
    try:
        return parse_ports(spec)
    except argparse.ArgumentTypeError as error:
        raise WireError(f"{what}: {error}") from error


def _build_unit(
    spec: Mapping[str, Any],
    defaults: Mapping[str, Any],
    what: str,
) -> Tuple[WorkUnit, Tuple[str, str]]:
    """One unit spec (+ inherited defaults) -> (WorkUnit, labels)."""
    _check_keys(spec, _UNIT_KEYS, what)
    benchmark = spec.get("benchmark")
    if not isinstance(benchmark, str) or benchmark not in ALL_NAMES:
        raise WireError(
            f"{what}: 'benchmark' must name one of {', '.join(ALL_NAMES)} "
            f"(got {benchmark!r})"
        )
    if "ports" in spec and "machine" in spec:
        raise WireError(f"{what}: give either 'ports' or 'machine', not both")
    if "machine" in spec:
        machine_data = _require_mapping(spec["machine"], f"{what}: 'machine'")
        try:
            if set(machine_data) == {"ports"}:
                # shorthand: just a port model on the paper baseline
                ports_data = _require_mapping(
                    machine_data["ports"], f"{what}: 'machine.ports'"
                )
                machine = paper_machine(port_model_from_dict(dict(ports_data)))
            else:
                machine = machine_config_from_dict(dict(machine_data))
        except (ConfigError, ReproError) as error:
            raise WireError(f"{what}: {error}") from error
        except (KeyError, TypeError, ValueError) as error:
            raise WireError(f"{what}: bad machine config: {error}") from error
    else:
        ports = _parse_ports_spec(spec.get("ports", "ideal:1"), what)
        machine = paper_machine(ports)

    values = dict(defaults)
    values.update(_settings_values(spec, what))
    try:
        settings = RunSettings(benchmarks=(benchmark,), **values)
    except ValueError as error:
        raise WireError(f"{what}: {error}") from error
    unit = WorkUnit.build(benchmark, machine, settings)
    return unit, (benchmark, machine.ports.describe())


def _pack_request(data: Mapping[str, Any]) -> SimulateRequest:
    from ..experiments.packs import load_pack, pack_units

    _check_keys(data, ("pack", "quick"), "pack request")
    name = data["pack"]
    if not isinstance(name, str):
        raise WireError(f"'pack' must be a pack name, got {name!r}")
    quick = data.get("quick", False)
    if not isinstance(quick, bool):
        raise WireError(f"'quick' must be a boolean, got {quick!r}")
    try:
        pack = load_pack(name)
    except ConfigError as error:
        raise WireError(str(error)) from error
    settings = pack.run_settings(quick=quick)
    units = pack_units(pack, settings)
    labels = []
    for workload in settings.benchmarks:
        for variant_label, machine in pack.variants:
            labels.append((workload, machine.ports.describe()))
    return SimulateRequest(
        units=tuple(units),
        description=f"pack {pack.name}" + (" (quick)" if quick else ""),
        labels=tuple(labels),
    )


def simulate_request(data: Any) -> SimulateRequest:
    """Parse one ``POST /v1/simulate`` body into engine work units."""
    data = _require_mapping(data, "request body")
    if "pack" in data:
        return _pack_request(data)
    _check_keys(data, _REQUEST_KEYS, "request body")
    defaults = _settings_values(data, "request body")
    if "units" in data:
        specs = data["units"]
        if not isinstance(specs, list) or not specs:
            raise WireError("'units' must be a non-empty list of unit objects")
        units: List[WorkUnit] = []
        labels: List[Tuple[str, str]] = []
        for index, spec in enumerate(specs):
            spec = _require_mapping(spec, f"units[{index}]")
            unit, label = _build_unit(spec, defaults, f"units[{index}]")
            units.append(unit)
            labels.append(label)
        return SimulateRequest(
            units=tuple(units),
            description=f"{len(units)} unit(s)",
            labels=tuple(labels),
        )
    unit, label = _build_unit(data, {}, "request body")
    return SimulateRequest(
        units=(unit,), description=unit.label, labels=(label,)
    )
