"""The ``repro-lbic`` command-line interface.

Subcommands regenerate each paper artifact, run single configurations,
sweep ablations, and manage traces::

    repro-lbic table2                 # benchmark characteristics
    repro-lbic table3 -n 20000        # conventional designs sweep
    repro-lbic table4                 # LBIC sweep
    repro-lbic figure3                # reference-stream mapping
    repro-lbic claims                 # C1-C6 checklist
    repro-lbic run swim --ports lbic:4x4
    repro-lbic ablation lsq-depth
    repro-lbic stalls swim --ports bank:4   # where every cycle went
    repro-lbic metrics swim --ports lbic:4x4  # occupancy + bank utilization
    repro-lbic trace swim out.trc -n 50000  # workload trace (replayable)
    repro-lbic trace swim --ports bank:4 events.jsonl   # timing events
    repro-lbic pack run replacement-policies --quick    # declarative sweep
    repro-lbic bench swim --ports ideal:4 --backend array   # instr/s
    repro-lbic bench gcc --compare --json   # all backends, side by side
    repro-lbic bench gcc --profile    # cProfile top-20 hotspot table
    repro-lbic serve --port 8023      # HTTP simulation daemon
    repro-lbic spans summary          # span-trace totals + critical path
    repro-lbic spans export -o out.json  # Chrome trace JSON (Perfetto)
    repro-lbic list

Every timing subcommand accepts ``--jobs N`` (parallel workers; default:
all cores), ``--no-cache`` (skip the persistent result store under
``results/cache/``), ``--progress`` (live ``[done/total]`` line with
an ETA on stderr), ``--backend {object,array,jit}`` (which timing
core runs the simulation — bit-identical results, different speed; see
``docs/performance.md``) and ``--trace-spans`` (record a span trace of
the run under ``results/cache/traces-spans/``; inspect with
``repro-lbic spans``).  ``repro-lbic cache info`` / ``cache clear``
inspect and empty the store, including the engine-telemetry JSONL under
``results/cache/telemetry/`` and the recorded span traces.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .common.config import (
    BankedPortConfig,
    IdealPortConfig,
    LBICConfig,
    PortModelConfig,
    ReplicatedPortConfig,
    paper_machine,
)
from .common.errors import ReproError
from .core.processor import Processor
from .workloads.spec95 import ALL_NAMES, PAPER_TARGETS, spec95_workload
from .workloads.tracefile import save_trace


def parse_ports(text: str) -> PortModelConfig:
    """Parse a port-model spec: ``ideal:4``, ``repl:2``, ``bank:8``,
    ``lbic:4x2`` (optionally ``lbic:4x2:sq8`` for the store-queue depth)."""
    parts = text.lower().split(":")
    kind = parts[0]
    try:
        if kind == "ideal":
            return IdealPortConfig(ports=int(parts[1]))
        if kind in ("repl", "replicated"):
            return ReplicatedPortConfig(ports=int(parts[1]))
        if kind in ("bank", "banked"):
            return BankedPortConfig(banks=int(parts[1]))
        if kind == "lbic":
            banks, buffer_ports = parts[1].split("x")
            depth = 8
            for extra in parts[2:]:
                if extra.startswith("sq"):
                    depth = int(extra[2:])
            return LBICConfig(
                banks=int(banks),
                buffer_ports=int(buffer_ports),
                store_queue_depth=depth,
            )
    except (IndexError, ValueError):
        pass
    raise argparse.ArgumentTypeError(
        f"bad port spec {text!r}; expected ideal:N, repl:N, bank:M or lbic:MxN"
    )


def _settings(args: argparse.Namespace, **overrides):
    from .engine import RunSettings

    benchmarks = tuple(args.benchmarks) if args.benchmarks else ALL_NAMES
    backend = getattr(args, "backend", None)
    if backend is not None:
        overrides["backend"] = backend
    return RunSettings(
        instructions=args.instructions,
        seed=args.seed,
        benchmarks=benchmarks,
        **overrides,
    )


def _backend_kw(args: argparse.Namespace) -> dict:
    """``{"backend": ...}`` when ``--backend`` was given, else ``{}``
    (letting :class:`RunSettings` apply its ``$REPRO_BACKEND`` default)."""
    backend = getattr(args, "backend", None)
    return {"backend": backend} if backend is not None else {}


def _engine(args: argparse.Namespace, settings=None):
    """The simulation engine for one CLI invocation: parallel across
    ``--jobs`` workers, persisting to ``results/cache`` unless
    ``--no-cache``, with a live progress line under ``--progress`` and
    span tracing under ``--trace-spans``."""
    from .engine import ProgressPrinter, ResultStore, SimulationEngine

    store = None if getattr(args, "no_cache", False) else ResultStore()
    progress = ProgressPrinter() if getattr(args, "progress", False) else None
    tracer = None
    if getattr(args, "trace_spans", False):
        from .obs.tracing import Tracer

        tracer = Tracer()
    return SimulationEngine(
        settings if settings is not None else _settings(args),
        jobs=getattr(args, "jobs", None),
        store=store,
        progress=progress,
        tracer=tracer,
    )


def _finish(engine, code: int = 0) -> int:
    """Flush engine telemetry and spans (no-ops for store-less or
    untraced engines) and pass the exit code through, so every command
    ends the same way."""
    engine.flush_telemetry()
    engine.flush_spans()
    return code


def _add_engine_opts(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="parallel simulation workers (default: all cores)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the persistent result cache",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="live [done/total] progress line with an ETA (stderr)",
    )
    parser.add_argument(
        "--backend", choices=("object", "array", "jit"), default=None,
        help="timing core: object (reference), array (flat-array "
             "kernel; bit-identical, faster) or jit (numba-compiled "
             "kernel — see docs/performance.md). "
             "Default: $REPRO_BACKEND or object",
    )
    parser.add_argument(
        "--trace-spans", action="store_true",
        help="record a span trace of the run (probe, per-unit phases, "
             "backend busy loop) under results/cache/traces-spans/; "
             "inspect with 'repro-lbic spans' (see docs/observability.md)",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-n", "--instructions", type=int, default=20_000,
        help="instructions to simulate per run (default 20000)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "-b", "--benchmarks", nargs="*", choices=sorted(ALL_NAMES),
        help="subset of benchmarks (default: all ten)",
    )
    _add_engine_opts(parser)


def cmd_table2(args) -> int:
    from .experiments.table2 import run_table2

    print(run_table2(_settings(args)).render())
    return 0


def cmd_table3(args) -> int:
    from .experiments.table3 import run_table3

    engine = _engine(args)
    print(run_table3(engine=engine).render(include_paper=not args.no_paper))
    return _finish(engine)


def cmd_table4(args) -> int:
    from .experiments.table4 import run_table4

    engine = _engine(args)
    print(run_table4(engine=engine).render(include_paper=not args.no_paper))
    return _finish(engine)


def cmd_figure3(args) -> int:
    from .experiments.figure3 import render_bank_sweep, run_bank_sweep, run_figure3

    settings = _settings(args)
    if args.bank_sweep:
        print(render_bank_sweep(run_bank_sweep(settings)))
    else:
        print(run_figure3(settings, banks=args.banks).render())
    return 0


def cmd_claims(args) -> int:
    from .experiments.comparisons import run_claim_checks

    engine = _engine(args)
    report = run_claim_checks(engine=engine)
    print(report.render())
    return _finish(engine, 0 if report.all_passed else 1)


def cmd_compare(args) -> int:
    from .experiments.comparisons import render_section6_table
    from .experiments.table3 import run_table3
    from .experiments.table4 import run_table4

    engine = _engine(args)
    table3 = run_table3(engine=engine)
    table4 = run_table4(engine=engine)
    print(render_section6_table(table3, table4, banks=args.banks))
    return _finish(engine)


def cmd_run(args) -> int:
    from .engine import RunSettings

    settings = RunSettings(
        instructions=args.instructions,
        seed=args.seed,
        benchmarks=(args.benchmark,),
        warmup_instructions=0,
        **_backend_kw(args),
    )
    engine = _engine(args, settings=settings)
    result = engine.result(args.benchmark, ports=args.ports)
    print(result.summary())
    print(f"  machine: {result.machine_description}")
    print(f"  accepted: {result.accepted_loads} loads, {result.accepted_stores} stores")
    if result.combined_accesses:
        print(f"  combined accesses: {result.combined_accesses}")
    refusals = {k: v for k, v in result.refusals.items() if v}
    if refusals:
        print(f"  refusals: {refusals}")
    return _finish(engine)


def cmd_ablation(args) -> int:
    from .experiments import ablations

    engine = _engine(args)
    if args.which == "lsq-depth":
        print(ablations.ablate_lsq_depth(engine=engine).render())
    elif args.which == "bank-function":
        banked, lbic = ablations.ablate_bank_function(engine=engine)
        print(banked.render())
        print()
        print(lbic.render())
    elif args.which == "store-queue":
        print(ablations.ablate_store_queue(engine=engine).render())
    elif args.which == "policy":
        print(ablations.ablate_combining_policy(engine=engine).render())
    elif args.which == "cost":
        points = ablations.cost_performance(engine=engine)
        print(ablations.render_cost_performance(points))
    elif args.which == "interleaving":
        print(ablations.ablate_interleaving(engine=engine).render())
    elif args.which == "bank-porting":
        print(ablations.ablate_bank_porting(engine=engine).render())
    elif args.which == "line-size":
        print(ablations.ablate_line_size(engine=engine).render())
    elif args.which == "associativity":
        print(ablations.ablate_associativity(engine=engine).render())
    elif args.which == "crossbar-latency":
        banked, lbic = ablations.ablate_crossbar_latency(engine=engine)
        print(banked.render())
        print()
        print(lbic.render())
    elif args.which == "fill-port":
        print(ablations.ablate_fill_port(engine=engine).render())
    elif args.which == "memory-latency":
        results = ablations.ablate_memory_latency(engine=engine)
        from .common.tables import Table

        table = Table(
            ["organization", "10 cyc", "30 cyc", "100 cyc"],
            precision=3,
            title="A9 - swim IPC vs main-memory latency",
        )
        for label, row in results.items():
            table.add_row([label] + list(row))
        print(table.render())
    return _finish(engine)


def cmd_analyze(args) -> int:
    """Deep-dive one benchmark/config: bandwidth + locality reports."""
    from .analysis import BandwidthReport, analyze_locality
    from .core.backends import default_backend, processor_class

    workload = spec95_workload(args.benchmark)
    machine = paper_machine(args.ports)
    backend = args.backend or default_backend()
    processor = processor_class(backend)(
        machine, label=f"{args.benchmark}/{args.ports.describe()}"
    )
    result = processor.run(
        workload.stream(seed=args.seed),
        max_instructions=args.instructions,
        warmup_instructions=args.warmup,
    )
    print(result.summary())
    print()
    print(BandwidthReport.from_processor(processor, result).render())
    print()
    locality_workload = spec95_workload(args.benchmark)
    report = analyze_locality(
        locality_workload.stream(seed=args.seed, max_instructions=args.instructions)
    )
    print(report.render())
    return 0


def _bench_compare(args, measure, source_for, label) -> int:
    """``bench --compare``: the same case on every registered backend,
    side by side, with speedups relative to ``object``."""
    import json

    from .common.registry import mechanism, mechanism_names
    from .core.jit import kernel_mode

    rows = []
    for name in mechanism_names("backend"):
        cls = mechanism("backend", name)
        best, result = measure(cls, source_for(cls))
        rows.append((name, best, result))

    baseline = {name: best for name, best, _ in rows}.get("object")
    results = {name: result for name, _, result in rows}
    reference = next(iter(results.values()))
    if any(r.cycles != reference.cycles for r in results.values()):
        print("warning: backends disagree on cycle counts", file=sys.stderr)

    records = [
        {
            "backend": name,
            "instr_per_s": round(best, 1),
            "speedup_vs_object": (
                round(best / baseline, 2) if baseline else None
            ),
            "cycles": result.cycles,
            "ipc": result.ipc,
        }
        for name, best, result in rows
    ]
    payload = {
        "case": label,
        "instructions": args.instructions,
        "rounds": args.rounds,
        "seed": args.seed,
        "warmed_up": True,
        "jit_kernel_mode": kernel_mode() or "fallback",
        "backends": records,
    }
    if args.as_json:
        print(json.dumps(payload, indent=2))
        return 0

    from .common.tables import Table

    table = Table(
        ["backend", "instr/s", "speedup", "cycles", "IPC"],
        precision=3,
        title=f"bench --compare: {label} "
              f"(n={args.instructions}, best of {args.rounds})",
    )
    for record in records:
        speedup = record["speedup_vs_object"]
        table.add_row([
            record["backend"],
            f"{record['instr_per_s']:,.0f}",
            f"{speedup:.2f}x" if speedup is not None else "-",
            record["cycles"],
            record["ipc"],
        ])
    print(table.render())
    if kernel_mode() == "":
        print("note: numba unavailable — the jit backend fell back to "
              "the array busy loop (see docs/performance.md)")
    return 0


def cmd_bench(args) -> int:
    """Throughput of one benchmark x ports x backend unit — the quick
    answer to "how fast does this configuration simulate here?" — and,
    under ``--profile``, where the cycles go (cProfile, top 20 by
    cumulative time).  ``--compare`` runs the same case on every
    registered backend and prints a side-by-side table (speedups are
    relative to ``object``)."""
    import time

    from .core.backends import default_backend, processor_class

    workload = spec95_workload(args.benchmark)
    stream = list(
        workload.stream(seed=args.seed, max_instructions=args.instructions)
    )
    machine = paper_machine(args.ports)
    label = f"{args.benchmark}/{args.ports.describe()}"

    def source_for(cls):
        if getattr(cls, "CONSUMES_COLUMNS", False):
            # Column conversion happens outside the timed region, the
            # same way the engine's amortized sweeps share one
            # conversion.
            from .core.flat import TraceColumns

            return TraceColumns.from_instructions(stream)
        return stream

    def measure(cls, source):
        """(best instr/s, result) over ``--rounds`` timed rounds, after
        one untimed warm-up run (JIT compilation, branch caches)."""
        def one_run():
            processor = cls(machine, label=label)
            replay = source if source is not stream else iter(stream)
            return processor.run(replay, max_instructions=args.instructions)

        one_run()  # warm-up, untimed
        best, result = 0.0, None
        for _ in range(args.rounds):
            start = time.perf_counter()
            result = one_run()
            elapsed = time.perf_counter() - start
            best = max(best, result.instructions / elapsed)
        return best, result

    if args.compare:
        return _bench_compare(args, measure, source_for, label)

    backend = args.backend or default_backend()
    cls = processor_class(backend)
    source = source_for(cls)

    def one_run():
        processor = cls(machine, label=label)
        replay = source if source is not stream else iter(stream)
        return processor.run(replay, max_instructions=args.instructions)

    if args.profile:
        import cProfile
        import io
        import pstats

        profile = cProfile.Profile()
        profile.enable()
        result = one_run()
        profile.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profile, stream=buffer)
        stats.sort_stats("cumulative").print_stats(20)
        print(result.summary())
        print(f"  backend: {backend}")
        print()
        print(buffer.getvalue().rstrip())
        return 0

    best = 0.0
    result = None
    for _ in range(args.rounds):
        start = time.perf_counter()
        result = one_run()
        elapsed = time.perf_counter() - start
        best = max(best, result.instructions / elapsed)
    print(result.summary())
    print(f"  backend: {backend}")
    print(f"  throughput: {best:,.0f} instr/s (best of {args.rounds})")
    return 0


def cmd_trace(args) -> int:
    if args.ports is None:
        # Legacy mode: capture the workload's instruction stream to a
        # replayable trace file.
        if not args.output:
            print(
                "error: an output file is required to capture a workload "
                "trace (pass --ports for a timing event trace)",
                file=sys.stderr,
            )
            return 2
        workload = spec95_workload(args.benchmark)
        count = save_trace(
            args.output,
            workload.stream(seed=args.seed, max_instructions=args.instructions),
        )
        print(f"wrote {count} instructions to {args.output}")
        return 0

    # Event-trace mode: run a timing simulation with tracing on and dump
    # the structured events (JSONL to a file, or the tail to stdout).
    from .engine import RunSettings
    from .obs import format_events, write_events_jsonl

    settings = RunSettings(
        instructions=args.instructions,
        seed=args.seed,
        benchmarks=(args.benchmark,),
        warmup_instructions=args.warmup,
        trace=True,
        trace_capacity=args.capacity,
        trace_sample=args.sample,
        **_backend_kw(args),
    )
    engine = _engine(args, settings=settings)
    result = engine.result(args.benchmark, ports=args.ports)
    events = result.extra.get("trace_events", [])
    summary = result.extra.get("trace_summary", {})
    if args.output:
        count = write_events_jsonl(args.output, events)
        print(f"wrote {count} events to {args.output}")
    elif events:
        print(format_events(events[-args.last:]))
    print(
        f"trace: {summary.get('offered', 0)} offered, "
        f"{summary.get('recorded', 0)} recorded, "
        f"{summary.get('kept', 0)} kept "
        f"(capacity {summary.get('capacity', args.capacity)}, "
        f"sample 1/{summary.get('sample_period', args.sample)})",
        file=sys.stderr,
    )
    return _finish(engine)


def cmd_stalls(args) -> int:
    """Stall attribution: charge every cycle of a run to one bucket."""
    from .engine import RunSettings
    from .obs import render_stalls, verify_stall_invariant

    settings = RunSettings(
        instructions=args.instructions,
        seed=args.seed,
        benchmarks=(args.benchmark,),
        warmup_instructions=args.warmup,
        observe=True,
        **_backend_kw(args),
    )
    engine = _engine(args, settings=settings)
    result = engine.result(args.benchmark, ports=args.ports)
    stalls = result.extra.get("stalls")
    if stalls is None:
        print("error: the result carries no stall attribution", file=sys.stderr)
        return 2
    try:
        verify_stall_invariant(stalls, result.cycles)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(result.summary())
    print()
    print(render_stalls(stalls, title=f"cycle attribution - {result.label}"))
    return _finish(engine)


def cmd_metrics(args) -> int:
    """Structure-utilization metrics: occupancy histograms and per-bank
    utilization for one benchmark/configuration pair."""
    import json

    from .engine import RunSettings
    from .obs import prometheus_metrics, render_metrics

    settings = RunSettings(
        instructions=args.instructions,
        seed=args.seed,
        benchmarks=(args.benchmark,),
        warmup_instructions=args.warmup,
        observe=True,
        metrics=True,
        **_backend_kw(args),
    )
    engine = _engine(args, settings=settings)
    result = engine.result(args.benchmark, ports=args.ports)
    metrics = result.extra.get("metrics")
    if metrics is None:
        print("error: the result carries no utilization metrics", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(metrics, indent=1, sort_keys=True))
    elif args.prom:
        labels = {"benchmark": args.benchmark, "ports": args.ports.describe()}
        print(prometheus_metrics(metrics, labels=labels), end="")
    else:
        print(result.summary())
        print()
        print(render_metrics(metrics, title=f"resource utilization - {result.label}"))
    return _finish(engine)


def cmd_report(args) -> int:
    from .experiments.report import build_report

    engine = _engine(args)
    report = build_report(engine=engine)
    markdown = report.to_markdown()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(markdown)
        print(f"wrote report to {args.output}")
    else:
        print(markdown, end="")
    print(engine.render_summary(), file=sys.stderr)
    return _finish(engine)


def cmd_cache(args) -> int:
    from .engine import ResultStore, clear_telemetry, render_telemetry_info
    from .obs.tracing import clear_spans, render_spans_info

    store = ResultStore()
    if args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} cached result(s) from {store.root}")
        removed_telemetry = clear_telemetry(store.root)
        if removed_telemetry:
            print(f"removed {removed_telemetry} telemetry file(s)")
        removed_spans = clear_spans(store.root)
        if removed_spans:
            print(f"removed {removed_spans} span-trace file(s)")
    else:
        print(store.info().render())
        telemetry = render_telemetry_info(store.root)
        if telemetry is not None:
            print(telemetry)
        spans = render_spans_info(store.root)
        if spans is not None:
            print(spans)
    return 0


def cmd_spans(args) -> int:
    """Inspect and export span traces (see docs/observability.md).

    ``spans view`` prints the per-trace tree, ``spans summary`` the
    per-span-name totals plus the newest trace's critical path, and
    ``spans export`` writes Chrome trace-event JSON that Perfetto and
    ``chrome://tracing`` load directly.
    """
    import json

    from .engine import ResultStore
    from .obs.tracing import (
        chrome_trace,
        group_by_trace,
        load_spans,
        verify_span_tree,
    )
    from .obs.render import render_span_summary, render_span_tree

    store = ResultStore()
    spans, corrupt = load_spans(store.root)
    if corrupt:
        print(f"warning: skipped {corrupt} corrupt span line(s)",
              file=sys.stderr)
    if args.trace:
        spans = [s for s in spans if s.get("trace") == args.trace]
    if not spans:
        where = f"trace {args.trace!r}" if args.trace else str(store.root)
        print(f"no spans recorded for {where} (run with --trace-spans "
              f"or serve --trace-spans first)", file=sys.stderr)
        return 1
    if args.spans_command == "export":
        if args.check:
            verify_span_tree(spans)
        payload = chrome_trace(spans)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            traces = len(group_by_trace(spans))
            print(f"wrote {len(payload['traceEvents'])} trace events "
                  f"({len(spans)} spans, {traces} trace(s)) to {args.output}")
        else:
            json.dump(payload, sys.stdout)
            print()
    elif args.spans_command == "summary":
        print(render_span_summary(spans, top=args.top))
    else:  # view
        print(render_span_tree(spans, last=args.last))
    return 0


def cmd_pack(args) -> int:
    from .experiments.packs import available_packs, load_pack, run_pack

    if args.pack_command == "list":
        for name in available_packs():
            pack = load_pack(name)
            print(f"{name:<26s} {len(pack.variants):>3d} variants  {pack.title}")
        return 0
    pack = load_pack(args.name)
    if args.pack_command == "show":
        print(pack.describe())
        return 0
    engine = _engine(args, settings=pack.run_settings(quick=args.quick))
    outcome = run_pack(
        pack, engine=engine, quick=args.quick,
        backend=getattr(args, "backend", None),
    )
    print(outcome.render())
    print(engine.render_summary(), file=sys.stderr)
    return _finish(engine)


def cmd_serve(args) -> int:
    """Run the simulation-as-a-service daemon (see docs/service.md)."""
    from .service import run_server

    return run_server(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        backlog=args.backlog,
        use_store=not args.no_cache,
        amortize=not args.no_amortize,
        trace_spans=args.trace_spans,
    )


def cmd_list(args) -> int:
    print("benchmark  suite  mem%   s/l    miss    ILP(16-port IPC)")
    for name in ALL_NAMES:
        target = PAPER_TARGETS[name]
        print(
            f"{name:<10s} {target.suite:<5s} {target.mem_fraction:5.1%} "
            f"{target.store_to_load:5.2f} {target.miss_rate:7.4f} {target.ipc_ceiling:5.1f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lbic",
        description=(
            "Reproduction of 'On High-Bandwidth Data Cache Design for "
            "Multi-Issue Processors' (MICRO-30, 1997)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, func, extra in (
        ("table2", cmd_table2, ()),
        ("table3", cmd_table3, ("no_paper",)),
        ("table4", cmd_table4, ("no_paper",)),
        ("figure3", cmd_figure3, ("banks",)),
        ("claims", cmd_claims, ()),
    ):
        p = sub.add_parser(name, help=f"regenerate {name}")
        _add_common(p)
        if "no_paper" in extra:
            p.add_argument("--no-paper", action="store_true",
                           help="omit the paper's reference rows")
        if "banks" in extra:
            p.add_argument("--banks", type=int, default=4)
            p.add_argument(
                "--bank-sweep", action="store_true",
                help="show same-line/diff-line mass at 2/4/8/16 banks "
                     "(the paper's section 4 infinite-banks argument)",
            )
        p.set_defaults(func=func)

    p = sub.add_parser(
        "compare",
        help="section-6 comparison: MxN LBIC vs ideal/replicated/2M-bank",
    )
    _add_common(p)
    p.add_argument("--banks", type=int, default=4)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("run", help="simulate one benchmark on one configuration")
    p.add_argument("benchmark", choices=sorted(ALL_NAMES))
    p.add_argument("--ports", type=parse_ports, default=IdealPortConfig(1),
                   help="ideal:N | repl:N | bank:M | lbic:MxN[:sqD]")
    p.add_argument("-n", "--instructions", type=int, default=20_000)
    p.add_argument("--seed", type=int, default=1)
    _add_engine_opts(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("ablation", help="run a design-choice sweep")
    p.add_argument("which", choices=[
        "lsq-depth", "bank-function", "store-queue", "policy", "cost",
        "interleaving", "bank-porting", "line-size", "memory-latency",
        "crossbar-latency", "fill-port", "associativity",
    ])
    _add_common(p)
    p.set_defaults(func=cmd_ablation)

    p = sub.add_parser(
        "analyze", help="bandwidth + locality deep-dive of one configuration"
    )
    p.add_argument("benchmark", choices=sorted(ALL_NAMES))
    p.add_argument("--ports", type=parse_ports,
                   default=LBICConfig(banks=4, buffer_ports=4))
    p.add_argument("-n", "--instructions", type=int, default=20_000)
    p.add_argument("--warmup", type=int, default=30_000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--backend", choices=("object", "array", "jit"),
                   default=None,
                   help="timing core (default: $REPRO_BACKEND or object)")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "bench",
        help="throughput of one benchmark x ports x backend unit; "
             "--profile prints the cProfile top-20 hotspot table",
    )
    p.add_argument("benchmark", choices=sorted(ALL_NAMES))
    p.add_argument("--ports", type=parse_ports, default=IdealPortConfig(4),
                   help="ideal:N | repl:N | bank:M | lbic:MxN[:sqD]")
    p.add_argument("-n", "--instructions", type=int, default=20_000)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--rounds", type=int, default=3,
                   help="measurement rounds, best-of (default 3)")
    p.add_argument("--backend", choices=("object", "array", "jit"),
                   default=None,
                   help="timing core (default: $REPRO_BACKEND or object)")
    p.add_argument("--profile", action="store_true",
                   help="run once under cProfile and print the top 20 "
                        "functions by cumulative time")
    p.add_argument("--compare", action="store_true",
                   help="run the same case on every registered backend "
                        "and print a side-by-side instr/s table with "
                        "speedups relative to object")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="with --compare: emit the comparison as JSON "
                        "instead of a table")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "trace",
        help="capture a workload trace to a file, or (with --ports) a "
             "structured timing event trace",
    )
    p.add_argument("benchmark", choices=sorted(ALL_NAMES))
    p.add_argument(
        "output", nargs="?",
        help="output file: replayable trace (workload mode) or JSONL "
             "(event mode; omit to print the tail to stdout)",
    )
    p.add_argument("-n", "--instructions", type=int, default=50_000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--ports", type=parse_ports, default=None,
        help="event-trace mode: simulate on this port model and record "
             "dispatch/issue/forward/blocked/refusal/fill events",
    )
    p.add_argument("--warmup", type=int, default=0,
                   help="warm-up instructions before timing (event mode)")
    p.add_argument("--sample", type=int, default=1,
                   help="record every Nth offered event (event mode)")
    p.add_argument("--capacity", type=int, default=4096,
                   help="event ring size; the most recent events survive")
    p.add_argument("--last", type=int, default=32,
                   help="events printed when no output file is given")
    _add_engine_opts(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "stalls",
        help="attribute every cycle of a run to a stall bucket",
    )
    p.add_argument("benchmark", choices=sorted(ALL_NAMES))
    p.add_argument("--ports", type=parse_ports,
                   default=LBICConfig(banks=4, buffer_ports=4),
                   help="ideal:N | repl:N | bank:M | lbic:MxN[:sqD]")
    p.add_argument("-n", "--instructions", type=int, default=20_000)
    p.add_argument("--warmup", type=int, default=30_000)
    p.add_argument("--seed", type=int, default=1)
    _add_engine_opts(p)
    p.set_defaults(func=cmd_stalls)

    p = sub.add_parser(
        "metrics",
        help="structure-utilization metrics: RUU/LSQ/MSHR occupancy and "
             "per-bank utilization histograms",
    )
    p.add_argument("benchmark", choices=sorted(ALL_NAMES))
    p.add_argument("--ports", type=parse_ports,
                   default=LBICConfig(banks=4, buffer_ports=4),
                   help="ideal:N | repl:N | bank:M | lbic:MxN[:sqD]")
    p.add_argument("-n", "--instructions", type=int, default=20_000)
    p.add_argument("--warmup", type=int, default=30_000)
    p.add_argument("--seed", type=int, default=1)
    fmt = p.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true",
                     help="dump the raw metrics payload as JSON")
    fmt.add_argument("--prom", action="store_true",
                     help="emit Prometheus text-exposition gauges")
    _add_engine_opts(p)
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser(
        "report", help="run every core experiment and emit a markdown report"
    )
    _add_common(p)
    p.add_argument("-o", "--output", help="write the report to a file")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("cache", help="inspect or clear the persistent result cache")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser("info", help="show entry counts and version stamps")
    cache_sub.add_parser("clear", help="delete every cached result")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "spans",
        help="inspect or export span traces recorded under --trace-spans",
    )
    spans_sub = p.add_subparsers(dest="spans_command", required=True)
    sv = spans_sub.add_parser("view", help="print the span tree per trace")
    sv.add_argument("--trace", default=None, help="only this trace ID")
    sv.add_argument("--last", type=int, default=4,
                    help="newest traces to show (default 4)")
    ss = spans_sub.add_parser(
        "summary", help="per-span totals and the newest trace's critical path"
    )
    ss.add_argument("--trace", default=None, help="only this trace ID")
    ss.add_argument("--top", type=int, default=10,
                    help="span names listed, by total time (default 10)")
    se = spans_sub.add_parser(
        "export",
        help="write Chrome trace-event JSON (loads in Perfetto / "
             "chrome://tracing)",
    )
    se.add_argument("-o", "--output", default=None,
                    help="output file (default: stdout)")
    se.add_argument("--trace", default=None, help="only this trace ID")
    se.add_argument("--check", action="store_true",
                    help="verify parent/child span integrity before export")
    p.set_defaults(func=cmd_spans)

    p = sub.add_parser("pack", help="run declarative experiment packs")
    pack_sub = p.add_subparsers(dest="pack_command", required=True)
    pack_sub.add_parser("list", help="list the shipped packs")
    ps = pack_sub.add_parser(
        "show", help="describe one pack's settings and variants"
    )
    ps.add_argument("name", help="pack name or path to a .json pack file")
    pr = pack_sub.add_parser("run", help="execute one pack through the engine")
    pr.add_argument("name", help="pack name or path to a .json pack file")
    pr.add_argument(
        "--quick", action="store_true",
        help="apply the pack's quick overlay (smaller budget and workloads)",
    )
    _add_engine_opts(pr)
    p.set_defaults(func=cmd_pack)

    p = sub.add_parser(
        "serve",
        help="run the HTTP simulation daemon (store-hit fast path, "
             "in-flight dedup, bounded FIFO backlog)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8023,
                   help="TCP port (default 8023; 0 picks a free port)")
    p.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="persistent worker-pool size (default: usable cores)",
    )
    p.add_argument(
        "--backlog", type=int, default=64,
        help="max queued cold units before requests shed with 429 "
             "(default 64)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the persistent result cache",
    )
    p.add_argument(
        "--no-amortize", action="store_true",
        help="disable materialized-trace/warm-checkpoint amortization",
    )
    p.add_argument(
        "--trace-spans", action="store_true",
        help="record a span trace per request (queue wait, dedup "
             "decision, engine phases, busy loop) under "
             "results/cache/traces-spans/",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("list", help="list the benchmark models and their targets")
    p.set_defaults(func=cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
