"""Operation classes and concrete operations of the mini-ISA.

The simulator times instructions by *operation class* (the rows of the
paper's Table 1 functional-unit latency table).  The concrete
:class:`Operation` enum is the assembly-level instruction set used by the
mini-ISA interpreter; every operation maps onto one operation class.
"""

from __future__ import annotations

import enum
from typing import Dict


class OpClass(enum.IntEnum):
    """Timing classes of the simulated machine (paper Table 1)."""

    IALU = 0
    IMULT = 1
    IDIV = 2
    FADD = 3
    FMULT = 4
    FDIV = 5
    LOAD = 6
    STORE = 7

    @property
    def is_load(self) -> bool:
        return self is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self is OpClass.STORE

    @property
    def is_mem(self) -> bool:
        return self is OpClass.LOAD or self is OpClass.STORE

    @property
    def fu_pool(self) -> str:
        """Name of the functional-unit pool that executes this class."""
        return _FU_POOL[self]


_FU_POOL: Dict[OpClass, str] = {
    OpClass.IALU: "ialu",
    OpClass.IMULT: "imult",
    OpClass.IDIV: "imult",  # int mult/div share a pool, as in SimpleScalar
    OpClass.FADD: "fadd",
    OpClass.FMULT: "fmult",
    OpClass.FDIV: "fmult",  # fp mult/div share a pool
    OpClass.LOAD: "ls",
    OpClass.STORE: "ls",
}


class Operation(enum.Enum):
    """Concrete operations of the mini-ISA assembler/interpreter.

    Branches are perfectly predicted in this study (paper section 2.1), so
    they time like 1-cycle integer ALU operations and never flush.
    """

    # integer
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    ADDI = "addi"
    LI = "li"
    MOV = "mov"
    # floating point
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FMOV = "fmov"
    # memory
    LD = "ld"
    ST = "st"
    FLD = "fld"
    FST = "fst"
    # control
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    J = "j"
    HALT = "halt"
    NOP = "nop"

    @property
    def opclass(self) -> OpClass:
        return _OPERATION_CLASS[self]

    @property
    def is_branch(self) -> bool:
        return self in (Operation.BEQ, Operation.BNE, Operation.BLT, Operation.BGE, Operation.J)

    @property
    def is_mem(self) -> bool:
        return self in (Operation.LD, Operation.ST, Operation.FLD, Operation.FST)

    @property
    def is_store(self) -> bool:
        return self in (Operation.ST, Operation.FST)

    @property
    def is_load(self) -> bool:
        return self in (Operation.LD, Operation.FLD)


_OPERATION_CLASS: Dict[Operation, OpClass] = {
    Operation.ADD: OpClass.IALU,
    Operation.SUB: OpClass.IALU,
    Operation.MUL: OpClass.IMULT,
    Operation.DIV: OpClass.IDIV,
    Operation.AND: OpClass.IALU,
    Operation.OR: OpClass.IALU,
    Operation.XOR: OpClass.IALU,
    Operation.SLL: OpClass.IALU,
    Operation.SRL: OpClass.IALU,
    Operation.ADDI: OpClass.IALU,
    Operation.LI: OpClass.IALU,
    Operation.MOV: OpClass.IALU,
    Operation.FADD: OpClass.FADD,
    Operation.FSUB: OpClass.FADD,
    Operation.FMUL: OpClass.FMULT,
    Operation.FDIV: OpClass.FDIV,
    Operation.FMOV: OpClass.FADD,
    Operation.LD: OpClass.LOAD,
    Operation.ST: OpClass.STORE,
    Operation.FLD: OpClass.LOAD,
    Operation.FST: OpClass.STORE,
    Operation.BEQ: OpClass.IALU,
    Operation.BNE: OpClass.IALU,
    Operation.BLT: OpClass.IALU,
    Operation.BGE: OpClass.IALU,
    Operation.J: OpClass.IALU,
    Operation.HALT: OpClass.IALU,
    Operation.NOP: OpClass.IALU,
}

#: Lookup from mnemonic text to operation, used by the assembler.
MNEMONICS: Dict[str, Operation] = {op.value: op for op in Operation}
