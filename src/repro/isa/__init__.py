"""Mini-ISA: operation classes, instructions, assembler and interpreter."""

from .assembler import Assembler, assemble
from .encoding import load_program, save_program
from .instruction import DynInstr, Instruction
from .opcodes import MNEMONICS, OpClass, Operation
from .program import Interpreter, Program, run_program
from .registers import (
    FP_BASE,
    NUM_FP_REGS,
    NUM_INT_REGS,
    NUM_REGS,
    ZERO_REG,
    RegisterState,
    fp_reg,
    int_reg,
    is_fp,
    parse_reg,
    reg_name,
)

__all__ = [
    "Assembler",
    "DynInstr",
    "FP_BASE",
    "Instruction",
    "Interpreter",
    "MNEMONICS",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "NUM_REGS",
    "OpClass",
    "Operation",
    "Program",
    "RegisterState",
    "ZERO_REG",
    "assemble",
    "load_program",
    "save_program",
    "fp_reg",
    "int_reg",
    "is_fp",
    "parse_reg",
    "reg_name",
    "run_program",
]
