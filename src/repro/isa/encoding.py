"""Binary encoding of mini-ISA programs.

A :class:`~repro.isa.program.Program` serializes to a compact versioned
binary format (``.rbin``), so assembled kernels can ship with traces and
reload without the assembler:

* 8-byte magic ``REPROBIN``, 2-byte version, 2-byte label count, 4-byte
  instruction count;
* per instruction, a fixed 12-byte record:
  opcode(1) dest(1) src1(1) src2(1) imm(4, signed LE) target(4, signed
  LE, -1 = none) — register fields use 0xFF for "none";
* label table: per label, a length-prefixed UTF-8 name and a 4-byte
  instruction index.
"""

from __future__ import annotations

import dataclasses
import io
import struct
from pathlib import Path
from typing import BinaryIO, Dict, List, Union

from ..common.errors import AssemblyError, TraceFormatError
from .instruction import Instruction
from .opcodes import Operation
from .program import Program

MAGIC = b"REPROBIN"
VERSION = 1
_HEADER = struct.Struct("<8sHHI")
_RECORD = struct.Struct("<BBBBiI")
_NONE_REG = 0xFF
_NONE_TARGET = 0xFFFFFFFF

#: stable operation numbering for the wire format (do not reorder)
_OPERATIONS = tuple(Operation)
_OP_TO_CODE = {op: code for code, op in enumerate(_OPERATIONS)}

PathLike = Union[str, Path]


def encode_instruction(instr: Instruction) -> bytes:
    """Encode one static instruction into its 12-byte record."""
    if not -(2**31) <= instr.imm < 2**31:
        raise AssemblyError(f"immediate {instr.imm} does not fit in 32 bits")
    target = _NONE_TARGET if instr.target is None else instr.target
    return _RECORD.pack(
        _OP_TO_CODE[instr.op],
        _NONE_REG if instr.dest is None else instr.dest,
        _NONE_REG if instr.src1 is None else instr.src1,
        _NONE_REG if instr.src2 is None else instr.src2,
        instr.imm,
        target,
    )


def decode_instruction(raw: bytes) -> Instruction:
    """Decode one 12-byte record back into an :class:`Instruction`."""
    if len(raw) != _RECORD.size:
        raise TraceFormatError("truncated instruction record")
    opcode, dest, src1, src2, imm, target = _RECORD.unpack(raw)
    if opcode >= len(_OPERATIONS):
        raise TraceFormatError(f"bad opcode byte {opcode}")
    return Instruction(
        op=_OPERATIONS[opcode],
        dest=None if dest == _NONE_REG else dest,
        src1=None if src1 == _NONE_REG else src1,
        src2=None if src2 == _NONE_REG else src2,
        imm=imm,
        target=None if target == _NONE_TARGET else target,
    )


def write_program(fh: BinaryIO, program: Program) -> None:
    fh.write(
        _HEADER.pack(MAGIC, VERSION, len(program.labels), len(program.instructions))
    )
    for instr in program.instructions:
        fh.write(encode_instruction(instr))
    for label, index in sorted(program.labels.items()):
        name = label.encode("utf-8")
        if len(name) > 255:
            raise AssemblyError(f"label too long: {label!r}")
        fh.write(bytes((len(name),)))
        fh.write(name)
        fh.write(struct.pack("<I", index))


def read_program(fh: BinaryIO, name: str = "<binary>") -> Program:
    raw = fh.read(_HEADER.size)
    if len(raw) != _HEADER.size:
        raise TraceFormatError("truncated program header")
    magic, version, label_count, instr_count = _HEADER.unpack(raw)
    if magic != MAGIC:
        raise TraceFormatError(f"bad program magic {magic!r}")
    if version != VERSION:
        raise TraceFormatError(f"unsupported program version {version}")
    instructions: List[Instruction] = []
    for _ in range(instr_count):
        instructions.append(decode_instruction(fh.read(_RECORD.size)))
    labels: Dict[str, int] = {}
    for _ in range(label_count):
        length_raw = fh.read(1)
        if not length_raw:
            raise TraceFormatError("truncated label table")
        name_raw = fh.read(length_raw[0])
        index_raw = fh.read(4)
        if len(name_raw) != length_raw[0] or len(index_raw) != 4:
            raise TraceFormatError("truncated label entry")
        labels[name_raw.decode("utf-8")] = struct.unpack("<I", index_raw)[0]
    # Restore the disassembly sugar: branches whose target carries a
    # label get the label text back.
    by_index = {index: label for label, index in labels.items()}
    instructions = [
        dataclasses.replace(instr, label=by_index[instr.target])
        if instr.target is not None and instr.target in by_index
        else instr
        for instr in instructions
    ]
    return Program(instructions=instructions, labels=labels, name=name)


def save_program(path: PathLike, program: Program) -> None:
    """Write ``program`` to ``path`` in the binary format."""
    with open(path, "wb") as fh:
        write_program(fh, program)


def load_program(path: PathLike) -> Program:
    """Load a binary program file."""
    path = Path(path)
    with open(path, "rb") as fh:
        return read_program(fh, name=path.stem)


def roundtrip(program: Program) -> Program:
    """Encode and decode in memory (testing/debugging helper)."""
    buffer = io.BytesIO()
    write_program(buffer, program)
    buffer.seek(0)
    return read_program(buffer, name=program.name)
