"""A two-pass assembler for the mini-ISA.

Supported syntax (one instruction per line)::

    # comments run to end of line; ';' also starts a comment
    loop:                       # labels end with ':'
        li   r2, 4096
        ld   r1, 0(r2)          # load:  dest, offset(base)
        add  r3, r1, r1
        st   r3, 8(r2)          # store: data, offset(base)
        addi r2, r2, 32
        bne  r2, r6, loop       # branch: src1, src2, label
        halt

Numeric immediates may be decimal, hex (``0x``) or negative.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..common.errors import AssemblyError
from .instruction import Instruction
from .opcodes import MNEMONICS, Operation
from .program import Program
from .registers import parse_reg

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_MEM_OPERAND_RE = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))\(([rf]\d+)\)$")


def _strip_comment(line: str) -> str:
    for marker in ("#", ";", "//"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _parse_imm(text: str) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblyError(f"malformed immediate: {text!r}") from None


def _split_operands(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


class Assembler:
    """Assembles mini-ISA source text into a :class:`Program`."""

    def assemble(self, source: str, name: str = "<asm>") -> Program:
        lines = source.splitlines()
        labels, statements = self._first_pass(lines)
        instructions = [
            self._encode(op_text, operands, labels, line_no)
            for op_text, operands, line_no in statements
        ]
        return Program(instructions=instructions, labels=labels, name=name)

    # -- pass 1: collect labels -------------------------------------------

    def _first_pass(
        self, lines: List[str]
    ) -> Tuple[Dict[str, int], List[Tuple[str, str, int]]]:
        labels: Dict[str, int] = {}
        statements: List[Tuple[str, str, int]] = []
        for line_no, raw in enumerate(lines, start=1):
            line = _strip_comment(raw)
            if not line:
                continue
            while ":" in line:
                label, _, rest = line.partition(":")
                label = label.strip()
                if not _LABEL_RE.match(label):
                    raise AssemblyError(f"line {line_no}: bad label {label!r}")
                if label in labels:
                    raise AssemblyError(f"line {line_no}: duplicate label {label!r}")
                labels[label] = len(statements)
                line = rest.strip()
            if not line:
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operand_text = parts[1] if len(parts) > 1 else ""
            statements.append((mnemonic, operand_text, line_no))
        return labels, statements

    # -- pass 2: encode ----------------------------------------------------

    def _encode(
        self,
        mnemonic: str,
        operand_text: str,
        labels: Dict[str, int],
        line_no: int,
    ) -> Instruction:
        op = MNEMONICS.get(mnemonic)
        if op is None:
            raise AssemblyError(f"line {line_no}: unknown mnemonic {mnemonic!r}")
        operands = _split_operands(operand_text)

        def fail(why: str) -> AssemblyError:
            return AssemblyError(f"line {line_no}: {why} in {mnemonic!r} {operand_text!r}")

        if op in (Operation.NOP, Operation.HALT):
            if operands:
                raise fail("unexpected operands")
            return Instruction(op=op)

        if op is Operation.J:
            if len(operands) != 1:
                raise fail("expected 1 operand")
            return Instruction(op=op, target=self._target(operands[0], labels, line_no),
                               label=operands[0])

        if op.is_branch:
            if len(operands) != 3:
                raise fail("expected 3 operands")
            return Instruction(
                op=op,
                src1=parse_reg(operands[0]),
                src2=parse_reg(operands[1]),
                target=self._target(operands[2], labels, line_no),
                label=operands[2],
            )

        if op.is_load:
            if len(operands) != 2:
                raise fail("expected 2 operands")
            imm, base = self._mem_operand(operands[1], line_no)
            return Instruction(op=op, dest=parse_reg(operands[0]), src1=base, imm=imm)

        if op.is_store:
            if len(operands) != 2:
                raise fail("expected 2 operands")
            imm, base = self._mem_operand(operands[1], line_no)
            return Instruction(op=op, src2=parse_reg(operands[0]), src1=base, imm=imm)

        if op is Operation.LI:
            if len(operands) != 2:
                raise fail("expected 2 operands")
            return Instruction(op=op, dest=parse_reg(operands[0]), imm=_parse_imm(operands[1]))

        if op in (Operation.MOV, Operation.FMOV):
            if len(operands) != 2:
                raise fail("expected 2 operands")
            return Instruction(op=op, dest=parse_reg(operands[0]), src1=parse_reg(operands[1]))

        if op in (Operation.ADDI, Operation.SLL, Operation.SRL):
            if len(operands) != 3:
                raise fail("expected 3 operands")
            return Instruction(
                op=op,
                dest=parse_reg(operands[0]),
                src1=parse_reg(operands[1]),
                imm=_parse_imm(operands[2]),
            )

        # three-register ALU / FP forms
        if len(operands) != 3:
            raise fail("expected 3 operands")
        return Instruction(
            op=op,
            dest=parse_reg(operands[0]),
            src1=parse_reg(operands[1]),
            src2=parse_reg(operands[2]),
        )

    def _target(self, text: str, labels: Dict[str, int], line_no: int) -> int:
        text = text.strip()
        if text in labels:
            return labels[text]
        if text.lstrip("-").isdigit():
            return int(text)
        raise AssemblyError(f"line {line_no}: unknown branch target {text!r}")

    def _mem_operand(self, text: str, line_no: int) -> Tuple[int, int]:
        match = _MEM_OPERAND_RE.match(text.replace(" ", ""))
        if not match:
            raise AssemblyError(
                f"line {line_no}: malformed memory operand {text!r} "
                "(expected offset(base))"
            )
        return _parse_imm(match.group(1)), parse_reg(match.group(2))


def assemble(source: str, name: str = "<asm>") -> Program:
    """Convenience wrapper: assemble source text into a :class:`Program`."""
    return Assembler().assemble(source, name=name)
