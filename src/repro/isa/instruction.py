"""Instruction records.

Two representations exist:

* :class:`Instruction` — a *static* assembly instruction (opcode plus
  symbolic operands), produced by the assembler and executed by the
  interpreter.
* :class:`DynInstr` — a *dynamic* instruction as seen by the timing
  simulator: an operation class, destination/source registers, and (for
  memory operations) the resolved effective address.  Workload models and
  the interpreter both emit streams of these; the out-of-order core and
  the trace analyses consume them.

``DynInstr`` is deliberately a plain ``__slots__`` class rather than a
dataclass: tens of millions are created on hot simulation paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .opcodes import OpClass, Operation
from .registers import reg_name


class DynInstr:
    """One dynamic instruction presented to the timing simulator.

    Attributes:
        opclass: timing class (decides FU pool and latency).
        dest: flat destination register index, or ``None``.
        srcs: tuple of flat source register indices (true dependences,
            including address operands of memory instructions).
        addr: byte effective address for loads/stores, else ``None``.
        size: access size in bytes for memory operations (default 8).
        addr_src_count: for stores, how many leading entries of ``srcs``
            are *address* operands (the rest are data).  A store's
            effective address resolves — unblocking memory
            disambiguation for younger loads — as soon as its address
            operands are ready, even while its data is still being
            computed (the STA/STD split of real LSQs).  Loads treat all
            sources as address operands.
    """

    __slots__ = (
        "opclass",
        "dest",
        "srcs",
        "addr",
        "size",
        "addr_src_count",
        "is_load",
        "is_store",
        "is_mem",
    )

    def __init__(
        self,
        opclass: OpClass,
        dest: Optional[int] = None,
        srcs: Tuple[int, ...] = (),
        addr: Optional[int] = None,
        size: int = 8,
        addr_src_count: Optional[int] = None,
    ) -> None:
        self.opclass = opclass
        self.dest = dest
        self.srcs = srcs
        self.addr = addr
        self.size = size
        self.addr_src_count = len(srcs) if addr_src_count is None else addr_src_count
        # Plain attributes rather than properties: the dispatcher and the
        # trace analyses test these once or more per instruction, and
        # tens of millions of DynInstrs flow through per simulation.
        is_load = opclass is OpClass.LOAD
        is_store = opclass is OpClass.STORE
        self.is_load = is_load
        self.is_store = is_store
        self.is_mem = is_load or is_store

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynInstr):
            return NotImplemented
        return (
            self.opclass == other.opclass
            and self.dest == other.dest
            and self.srcs == other.srcs
            and self.addr == other.addr
            and self.size == other.size
        )

    def __hash__(self) -> int:
        return hash((self.opclass, self.dest, self.srcs, self.addr, self.size))

    def __repr__(self) -> str:
        parts = [self.opclass.name]
        if self.dest is not None:
            parts.append(f"dest={reg_name(self.dest)}")
        if self.srcs:
            parts.append("srcs=" + ",".join(reg_name(s) for s in self.srcs))
        if self.addr is not None:
            parts.append(f"addr={self.addr:#x}")
        return f"DynInstr({' '.join(parts)})"


@dataclass(frozen=True)
class Instruction:
    """A static mini-ISA instruction (one line of assembly).

    Operand roles depend on the operation:

    * ALU reg-reg: ``dest, src1, src2``
    * ALU reg-imm (``addi``/``li``/shifts): ``dest, src1, imm``
    * loads: ``dest, imm(src1)``
    * stores: ``src2, imm(src1)`` — src2 is the data, src1 the base
    * branches: ``src1, src2, target`` (label index resolved at assembly)
    """

    op: Operation
    dest: Optional[int] = None
    src1: Optional[int] = None
    src2: Optional[int] = None
    imm: int = 0
    target: Optional[int] = None  # absolute instruction index for branches
    label: Optional[str] = None   # original label text, for disassembly

    def sources(self) -> Tuple[int, ...]:
        """Flat register indices this instruction truly reads."""
        srcs = []
        if self.src1 is not None:
            srcs.append(self.src1)
        if self.src2 is not None:
            srcs.append(self.src2)
        return tuple(srcs)

    def disassemble(self) -> str:
        """Render back to assembly text."""
        op = self.op
        if op is Operation.NOP or op is Operation.HALT:
            return op.value
        if op is Operation.J:
            return f"{op.value} {self.label or self.target}"
        if op.is_branch:
            return (
                f"{op.value} {reg_name(self.src1)}, {reg_name(self.src2)}, "
                f"{self.label or self.target}"
            )
        if op.is_load:
            return f"{op.value} {reg_name(self.dest)}, {self.imm}({reg_name(self.src1)})"
        if op.is_store:
            return f"{op.value} {reg_name(self.src2)}, {self.imm}({reg_name(self.src1)})"
        if op in (Operation.LI,):
            return f"{op.value} {reg_name(self.dest)}, {self.imm}"
        if op in (Operation.ADDI, Operation.SLL, Operation.SRL):
            return f"{op.value} {reg_name(self.dest)}, {reg_name(self.src1)}, {self.imm}"
        if op in (Operation.MOV, Operation.FMOV):
            return f"{op.value} {reg_name(self.dest)}, {reg_name(self.src1)}"
        return (
            f"{op.value} {reg_name(self.dest)}, {reg_name(self.src1)}, "
            f"{reg_name(self.src2)}"
        )
