"""Programs and the functional interpreter of the mini-ISA.

A :class:`Program` is a list of static instructions.  The
:class:`Interpreter` executes a program architecturally (registers and a
sparse byte-addressed memory) and *emits the dynamic instruction stream*
as :class:`~repro.isa.instruction.DynInstr` records — exactly what the
timing simulator consumes.  This turns any small assembly kernel into an
execution-driven workload, the same structure SimpleScalar uses (the
functional front end drives the timing back end).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..common.errors import SimulationError, WorkloadError
from .instruction import DynInstr, Instruction
from .opcodes import Operation
from .registers import RegisterState


@dataclass
class Program:
    """An assembled mini-ISA program."""

    instructions: List[Instruction]
    labels: Dict[str, int] = field(default_factory=dict)
    name: str = "<program>"

    def __post_init__(self) -> None:
        for label, index in self.labels.items():
            if not 0 <= index <= len(self.instructions):
                raise WorkloadError(
                    f"label {label!r} points outside program ({index})"
                )
        for pc, instr in enumerate(self.instructions):
            if instr.target is not None and not 0 <= instr.target <= len(self.instructions):
                raise WorkloadError(
                    f"instruction {pc} branches outside program ({instr.target})"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    def disassemble(self) -> str:
        """Render the program back to assembly text with labels."""
        by_index: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines: List[str] = []
        for pc, instr in enumerate(self.instructions):
            for label in sorted(by_index.get(pc, [])):
                lines.append(f"{label}:")
            lines.append("    " + instr.disassemble())
        for label in sorted(by_index.get(len(self.instructions), [])):
            lines.append(f"{label}:")
        return "\n".join(lines)


class Interpreter:
    """Architectural executor that yields the dynamic instruction stream.

    Memory is a sparse ``dict`` of 8-byte-aligned words.  Loads from
    untouched memory return zero.  Execution stops at ``halt``, when the
    program counter falls off the end, or after ``max_instructions``
    dynamic instructions (whichever comes first).
    """

    def __init__(self, program: Program, max_instructions: int = 1_000_000) -> None:
        if max_instructions < 1:
            raise WorkloadError("max_instructions must be >= 1")
        self.program = program
        self.max_instructions = max_instructions
        self.registers = RegisterState()
        self.memory: Dict[int, float] = {}
        self.pc = 0
        self.executed = 0
        self.halted = False

    # -- memory helpers ----------------------------------------------------

    @staticmethod
    def _word(addr: int) -> int:
        return addr & ~7

    def load_word(self, addr: int):
        return self.memory.get(self._word(addr), 0)

    def store_word(self, addr: int, value) -> None:
        self.memory[self._word(addr)] = value

    # -- execution ---------------------------------------------------------

    def run(self) -> Iterator[DynInstr]:
        """Execute and yield one :class:`DynInstr` per dynamic instruction."""
        program = self.program.instructions
        regs = self.registers
        while not self.halted and self.executed < self.max_instructions:
            if not 0 <= self.pc < len(program):
                break
            instr = program[self.pc]
            self.executed += 1
            yield self._execute(instr, regs)
        self.halted = True

    def _execute(self, instr: Instruction, regs: RegisterState) -> DynInstr:
        op = instr.op
        next_pc = self.pc + 1
        addr: Optional[int] = None

        if op is Operation.HALT:
            self.halted = True
        elif op is Operation.NOP:
            pass
        elif op is Operation.J:
            next_pc = instr.target  # type: ignore[assignment]
        elif op.is_branch:
            lhs = regs.read(instr.src1)
            rhs = regs.read(instr.src2)
            taken = {
                Operation.BEQ: lhs == rhs,
                Operation.BNE: lhs != rhs,
                Operation.BLT: lhs < rhs,
                Operation.BGE: lhs >= rhs,
            }[op]
            if taken:
                next_pc = instr.target  # type: ignore[assignment]
        elif op.is_load:
            addr = int(regs.read(instr.src1)) + instr.imm
            if addr < 0:
                raise SimulationError(
                    f"negative effective address {addr} at pc {self.pc}"
                )
            regs.write(instr.dest, self.load_word(addr))
        elif op.is_store:
            addr = int(regs.read(instr.src1)) + instr.imm
            if addr < 0:
                raise SimulationError(
                    f"negative effective address {addr} at pc {self.pc}"
                )
            self.store_word(addr, regs.read(instr.src2))
        else:
            regs.write(instr.dest, self._alu(op, instr, regs))

        self.pc = next_pc
        dest = instr.dest if not (op.is_store or op.is_branch or op in (
            Operation.HALT, Operation.NOP, Operation.J)) else None
        return DynInstr(
            opclass=op.opclass,
            dest=dest,
            srcs=instr.sources(),
            addr=addr,
            addr_src_count=1 if op.is_store else None,
        )

    def _alu(self, op: Operation, instr: Instruction, regs: RegisterState):
        a = regs.read(instr.src1) if instr.src1 is not None else 0
        b = regs.read(instr.src2) if instr.src2 is not None else 0
        if op is Operation.ADD:
            return a + b
        if op is Operation.SUB:
            return a - b
        if op is Operation.MUL:
            return a * b
        if op is Operation.DIV:
            return a // b if b else 0
        if op is Operation.AND:
            return int(a) & int(b)
        if op is Operation.OR:
            return int(a) | int(b)
        if op is Operation.XOR:
            return int(a) ^ int(b)
        if op is Operation.SLL:
            return int(a) << instr.imm
        if op is Operation.SRL:
            return int(a) >> instr.imm
        if op is Operation.ADDI:
            return a + instr.imm
        if op is Operation.LI:
            return instr.imm
        if op in (Operation.MOV, Operation.FMOV):
            return a
        if op is Operation.FADD:
            return a + b
        if op is Operation.FSUB:
            return a - b
        if op is Operation.FMUL:
            return a * b
        if op is Operation.FDIV:
            return a / b if b else 0.0
        raise SimulationError(f"unhandled ALU operation {op}")


def run_program(program: Program, max_instructions: int = 1_000_000) -> Iterator[DynInstr]:
    """Execute ``program`` and yield its dynamic instruction stream."""
    return Interpreter(program, max_instructions=max_instructions).run()
