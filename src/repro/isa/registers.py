"""Architectural register model of the mini-ISA.

The machine has 32 integer registers (``r0``-``r31``, with ``r0``
hardwired to zero) and 32 floating-point registers (``f0``-``f31``).
Registers are identified throughout the simulator by a flat index:
integers occupy 0-31 and floats occupy 32-63.  The out-of-order core
renames these, so only true (read-after-write) dependences matter for
timing.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.errors import AssemblyError

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Flat index of the hardwired-zero integer register.
ZERO_REG = 0

FP_BASE = NUM_INT_REGS


def int_reg(number: int) -> int:
    """Flat index of integer register ``r<number>``."""
    if not 0 <= number < NUM_INT_REGS:
        raise AssemblyError(f"integer register number out of range: {number}")
    return number


def fp_reg(number: int) -> int:
    """Flat index of floating-point register ``f<number>``."""
    if not 0 <= number < NUM_FP_REGS:
        raise AssemblyError(f"fp register number out of range: {number}")
    return FP_BASE + number


def is_fp(index: int) -> bool:
    return index >= FP_BASE


def reg_name(index: int) -> str:
    """Human-readable name of a flat register index."""
    if not 0 <= index < NUM_REGS:
        raise AssemblyError(f"register index out of range: {index}")
    if index < FP_BASE:
        return f"r{index}"
    return f"f{index - FP_BASE}"


def parse_reg(text: str) -> int:
    """Parse ``r<k>`` or ``f<k>`` into a flat register index."""
    text = text.strip().lower()
    if len(text) < 2 or text[0] not in "rf" or not text[1:].isdigit():
        raise AssemblyError(f"malformed register name: {text!r}")
    number = int(text[1:])
    return int_reg(number) if text[0] == "r" else fp_reg(number)


class RegisterState:
    """Architectural register values for the functional interpreter.

    Integer registers hold Python ints; fp registers hold floats.  ``r0``
    always reads as zero and silently discards writes (MIPS convention).
    """

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: List[float] = [0] * NUM_REGS

    def read(self, index: int):
        if index == ZERO_REG:
            return 0
        return self._values[index]

    def write(self, index: int, value) -> None:
        if index == ZERO_REG:
            return
        if index < FP_BASE:
            self._values[index] = int(value)
        else:
            self._values[index] = float(value)

    def snapshot(self) -> List[float]:
        """Copy of all register values (for tests and debugging)."""
        return list(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        nonzero = {
            reg_name(i): v for i, v in enumerate(self._values) if v
        }
        return f"RegisterState({nonzero})"
