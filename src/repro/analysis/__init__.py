"""Analyses: reference-stream mapping, traces, conflicts, locality."""

from .conflicts import BandwidthReport, compare_reports
from .locality import (
    COLD,
    LocalityReport,
    analyze_locality,
    miss_rate_for_cache_lines,
    reuse_distances,
    same_line_runs,
    working_set_sizes,
)
from .reference_stream import (
    DIFF_LINE,
    SAME_LINE,
    MappingResult,
    ReferenceMappingAnalyzer,
    analyze_addresses,
    analyze_stream,
    bank_delta_label,
    categories,
)
from .traces import FunctionalCache, TraceStats, characterize

__all__ = [
    "BandwidthReport",
    "COLD",
    "DIFF_LINE",
    "FunctionalCache",
    "LocalityReport",
    "MappingResult",
    "ReferenceMappingAnalyzer",
    "SAME_LINE",
    "TraceStats",
    "analyze_addresses",
    "analyze_locality",
    "analyze_stream",
    "bank_delta_label",
    "categories",
    "characterize",
    "compare_reports",
    "miss_rate_for_cache_lines",
    "reuse_distances",
    "same_line_runs",
    "working_set_sizes",
]
