"""Consecutive-reference mapping analysis (paper Figure 3).

For each pair of consecutive memory references, classify where the
successor lands relative to its predecessor in an (idealized,
infinite-capacity) line-interleaved banked cache:

* ``B - same line`` — same bank, same cache line: combinable by an LBIC;
* ``B - diff line`` — same bank, different line: a true bank conflict
  that combining cannot remove;
* ``(B + i) mod M`` — each of the other banks: conflict-free.

The paper collects these for an infinite four-bank cache with 32-byte
lines; the class supports any power-of-two bank count and line size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..common.config import is_power_of_two, log2_exact
from ..common.errors import AnalysisError
from ..common.stats import Distribution
from ..isa.instruction import DynInstr

SAME_LINE = "B-same-line"
DIFF_LINE = "B-diff-line"


def bank_delta_label(delta: int) -> str:
    return f"(B+{delta})"


def categories(banks: int) -> Tuple[str, ...]:
    """Category labels in the paper's Figure 3 order."""
    return (SAME_LINE, DIFF_LINE) + tuple(
        bank_delta_label(delta) for delta in range(1, banks)
    )


@dataclass
class MappingResult:
    """Counts of consecutive-reference transitions per category."""

    banks: int
    line_size: int
    counts: Dict[str, int] = field(default_factory=dict)
    pairs: int = 0

    def distribution(self) -> Distribution:
        return Distribution.from_counts(self.counts).normalized()

    def fraction(self, category: str) -> float:
        if self.pairs == 0:
            return 0.0
        return self.counts.get(category, 0) / self.pairs

    def same_bank_fraction(self) -> float:
        """Total probability mass on the predecessor's own bank."""
        return self.fraction(SAME_LINE) + self.fraction(DIFF_LINE)

    def combinable_conflict_fraction(self) -> float:
        """Of the same-bank mass, the share an LBIC can combine away."""
        same_bank = self.same_bank_fraction()
        if same_bank == 0.0:
            return 0.0
        return self.fraction(SAME_LINE) / same_bank

    def as_row(self) -> List[float]:
        return [self.fraction(c) for c in categories(self.banks)]


class ReferenceMappingAnalyzer:
    """Streaming analyzer over a memory-reference address sequence."""

    def __init__(self, banks: int = 4, line_size: int = 32) -> None:
        if not is_power_of_two(banks) or banks < 2:
            raise AnalysisError("banks must be a power of two >= 2")
        if not is_power_of_two(line_size):
            raise AnalysisError("line_size must be a power of two")
        self.banks = banks
        self.line_size = line_size
        self._offset_bits = log2_exact(line_size)
        self._bank_mask = banks - 1
        self._counts: Dict[str, int] = {c: 0 for c in categories(banks)}
        self._pairs = 0
        self._prev_line: Optional[int] = None

    def feed(self, addr: int) -> None:
        line = addr >> self._offset_bits
        prev = self._prev_line
        self._prev_line = line
        if prev is None:
            return
        self._pairs += 1
        if line == prev:
            self._counts[SAME_LINE] += 1
            return
        delta = (line - prev) & self._bank_mask
        if delta == 0:
            self._counts[DIFF_LINE] += 1
        else:
            self._counts[bank_delta_label(delta)] += 1

    def feed_many(self, addresses: Iterable[int]) -> None:
        for addr in addresses:
            self.feed(addr)

    def result(self) -> MappingResult:
        return MappingResult(
            banks=self.banks,
            line_size=self.line_size,
            counts=dict(self._counts),
            pairs=self._pairs,
        )


def analyze_stream(
    instructions: Iterable[DynInstr], banks: int = 4, line_size: int = 32
) -> MappingResult:
    """Run the Figure 3 analysis over a dynamic instruction stream."""
    analyzer = ReferenceMappingAnalyzer(banks=banks, line_size=line_size)
    for instr in instructions:
        if instr.is_mem:
            analyzer.feed(instr.addr)
    return analyzer.result()


def analyze_addresses(
    addresses: Iterable[int], banks: int = 4, line_size: int = 32
) -> MappingResult:
    """Run the Figure 3 analysis over raw byte addresses."""
    analyzer = ReferenceMappingAnalyzer(banks=banks, line_size=line_size)
    analyzer.feed_many(addresses)
    return analyzer.result()
