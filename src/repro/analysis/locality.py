"""Spatial and temporal locality metrics of a reference stream.

Three views of the stream, all at cache-line granularity:

* **same-line run lengths** — how many consecutive references stay in
  one line: the direct measure of what LBIC combining can exploit
  (a run of length k is k accesses one bank can serve together);
* **reuse (stack) distances** — for each reference, how many *distinct*
  lines were touched since the previous reference to its line.  The
  miss rate of a fully-associative LRU cache of L lines is exactly the
  fraction of reuse distances >= L, so the histogram predicts the miss
  rate of any cache size at once (Mattson et al.'s classic result).
  Computed exactly in O(n log n) with a Fenwick tree;
* **working-set sizes** — distinct lines touched per fixed window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..common.stats import Histogram
from ..isa.instruction import DynInstr

#: reuse distance reported for the first touch of a line
COLD = -1


class _Fenwick:
    """Binary indexed tree over access timestamps (prefix sums)."""

    __slots__ = ("size", "tree")

    def __init__(self, size: int) -> None:
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self.size:
            self.tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries [0, index]."""
        index += 1
        total = 0
        while index > 0:
            total += self.tree[index]
            index -= index & (-index)
        return total


def same_line_runs(
    addresses: Iterable[int], line_size: int = 32
) -> Histogram:
    """Histogram of consecutive same-line run lengths.

    A stream ``A A A B B C`` (letters = lines) yields runs 3, 2, 1.
    """
    histogram = Histogram("same_line_runs")
    shift = line_size.bit_length() - 1
    run = 0
    prev_line: Optional[int] = None
    for addr in addresses:
        line = addr >> shift
        if line == prev_line:
            run += 1
        else:
            if run:
                histogram.record(run)
            run = 1
            prev_line = line
    if run:
        histogram.record(run)
    return histogram


def reuse_distances(
    addresses: Iterable[int], line_size: int = 32
) -> Histogram:
    """Exact LRU stack distances at line granularity (cold = -1).

    Uses the classic timestamp + Fenwick-tree algorithm: for each access
    at time t, the stack distance is the number of distinct lines whose
    last access lies in (last(line), t).
    """
    addresses = list(addresses)
    histogram = Histogram("reuse_distances")
    if not addresses:
        return histogram
    shift = line_size.bit_length() - 1
    fenwick = _Fenwick(len(addresses))
    last_access: Dict[int, int] = {}
    for time, addr in enumerate(addresses):
        line = addr >> shift
        previous = last_access.get(line)
        if previous is None:
            histogram.record(COLD)
        else:
            distinct_since = fenwick.prefix_sum(time - 1) - fenwick.prefix_sum(
                previous
            )
            histogram.record(distinct_since)
            fenwick.add(previous, -1)
        fenwick.add(time, +1)
        last_access[line] = time
    return histogram


def miss_rate_for_cache_lines(distances: Histogram, cache_lines: int) -> float:
    """Miss rate of a fully-associative LRU cache with ``cache_lines``
    lines, read directly off the reuse-distance histogram."""
    total = distances.total
    if not total:
        return 0.0
    misses = sum(
        count
        for distance, count in distances.buckets.items()
        if distance == COLD or distance >= cache_lines
    )
    return misses / total


def working_set_sizes(
    addresses: Iterable[int], line_size: int = 32, window: int = 1000
) -> Histogram:
    """Distinct lines touched in each consecutive ``window`` references."""
    histogram = Histogram("working_set")
    shift = line_size.bit_length() - 1
    seen = set()
    count = 0
    for addr in addresses:
        seen.add(addr >> shift)
        count += 1
        if count == window:
            histogram.record(len(seen))
            seen.clear()
            count = 0
    if count:
        histogram.record(len(seen))
    return histogram


@dataclass
class LocalityReport:
    """All three locality views of one stream."""

    references: int
    runs: Histogram
    distances: Histogram
    working_sets: Histogram
    line_size: int = 32

    @property
    def mean_run_length(self) -> float:
        return self.runs.mean()

    @property
    def combinable_fraction(self) -> float:
        """Share of references inside a run of length >= 2 — an upper
        bound on what same-line combining can serve together."""
        total = sum(k * v for k, v in self.runs.buckets.items())
        if not total:
            return 0.0
        combinable = sum(
            k * v for k, v in self.runs.buckets.items() if k >= 2
        )
        return combinable / total

    def predicted_miss_rate(self, cache_bytes: int) -> float:
        return miss_rate_for_cache_lines(
            self.distances, cache_bytes // self.line_size
        )

    def render(self) -> str:
        lines = [
            f"locality over {self.references} references "
            f"({self.line_size}-byte lines):",
            f"  mean same-line run {self.mean_run_length:.2f}; "
            f"{self.combinable_fraction:.1%} of refs in combinable runs",
            f"  mean working set {self.working_sets.mean():.0f} lines per window",
            "  fully-associative LRU miss-rate predictions:",
        ]
        for size_kb in (8, 32, 128, 512):
            rate = self.predicted_miss_rate(size_kb * 1024)
            lines.append(f"    {size_kb:>4d} KB: {rate:.4f}")
        return "\n".join(lines)


def analyze_locality(
    instructions: Iterable[DynInstr],
    line_size: int = 32,
    window: int = 1000,
) -> LocalityReport:
    """Compute the full locality report for a dynamic instruction stream."""
    addresses = [i.addr for i in instructions if i.is_mem]
    return LocalityReport(
        references=len(addresses),
        runs=same_line_runs(addresses, line_size),
        distances=reuse_distances(addresses, line_size),
        working_sets=working_set_sizes(addresses, line_size, window),
        line_size=line_size,
    )
