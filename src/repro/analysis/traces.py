"""Trace-level (functional) workload characterization.

Measures the paper's Table 2 quantities for any workload without running
the timing simulator: instruction mix, store-to-load ratio, and the miss
rate of a functional 32 KB direct-mapped L1 — plus the Figure 3 mapping
distribution.  These are the statistics the synthetic SPEC95 models are
calibrated against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..common.config import CacheGeometry
from ..isa.instruction import DynInstr
from ..isa.opcodes import OpClass
from ..memory.cache import CacheArray
from .reference_stream import MappingResult, ReferenceMappingAnalyzer


@dataclass
class TraceStats:
    """Functional characteristics of one dynamic instruction stream."""

    instructions: int
    loads: int
    stores: int
    cache_accesses: int
    cache_misses: int
    opclass_counts: Dict[str, int]
    mapping: Optional[MappingResult] = None

    @property
    def mem_refs(self) -> int:
        return self.loads + self.stores

    @property
    def mem_fraction(self) -> float:
        return self.mem_refs / self.instructions if self.instructions else 0.0

    @property
    def store_to_load_ratio(self) -> float:
        """Stores per load; NaN when stores exist but loads do not (the
        same sentinel convention as :class:`repro.core.results.SimResult`)."""
        if self.loads:
            return self.stores / self.loads
        return float("nan") if self.stores else 0.0

    @property
    def miss_rate(self) -> float:
        if self.cache_accesses == 0:
            return 0.0
        return self.cache_misses / self.cache_accesses

    @property
    def fp_fraction(self) -> float:
        fp = sum(
            count
            for name, count in self.opclass_counts.items()
            if name.startswith("F")
        )
        return fp / self.instructions if self.instructions else 0.0

    def summary(self) -> str:
        return (
            f"n={self.instructions} mem={self.mem_fraction:.3f} "
            f"s/l={self.store_to_load_ratio:.2f} miss={self.miss_rate:.4f}"
        )


class FunctionalCache:
    """A trace-driven cache: access, fill on miss, count.

    Unlike the timing hierarchy, fills land instantly — this is the
    classic functional cache simulation used for miss-rate measurement
    (the paper's Table 2 column).
    """

    def __init__(self, geometry: Optional[CacheGeometry] = None) -> None:
        self.geometry = geometry or CacheGeometry(
            size_bytes=32 * 1024, line_size=32, associativity=1
        )
        self.array = CacheArray(self.geometry)
        self.accesses = 0
        self.misses = 0

    def access(self, addr: int, is_write: bool) -> bool:
        self.accesses += 1
        hit = self.array.access(addr, is_write)
        if not hit:
            self.misses += 1
            self.array.fill(addr, dirty=is_write)
        return hit

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


def characterize(
    instructions: Iterable[DynInstr],
    geometry: Optional[CacheGeometry] = None,
    mapping_banks: int = 4,
    skip_warmup: int = 0,
) -> TraceStats:
    """Measure Table 2 + Figure 3 statistics over an instruction stream.

    ``skip_warmup`` memory references prime the functional cache without
    being counted, so steady-state miss rates are not diluted by the cold
    start (useful when calibrating short runs of resident-working-set
    models).
    """
    cache = FunctionalCache(geometry)
    mapper = ReferenceMappingAnalyzer(
        banks=mapping_banks, line_size=cache.geometry.line_size
    )
    loads = stores = total = 0
    counted_accesses = 0
    counted_misses = 0
    warmup_left = skip_warmup
    opclass_counts: Dict[str, int] = {}
    for instr in instructions:
        total += 1
        name = instr.opclass.name
        opclass_counts[name] = opclass_counts.get(name, 0) + 1
        if not instr.is_mem:
            continue
        is_write = instr.opclass is OpClass.STORE
        if is_write:
            stores += 1
        else:
            loads += 1
        mapper.feed(instr.addr)
        hit = cache.access(instr.addr, is_write)
        if warmup_left > 0:
            warmup_left -= 1
            continue
        counted_accesses += 1
        if not hit:
            counted_misses += 1
    return TraceStats(
        instructions=total,
        loads=loads,
        stores=stores,
        cache_accesses=counted_accesses,
        cache_misses=counted_misses,
        opclass_counts=opclass_counts,
        mapping=mapper.result(),
    )
