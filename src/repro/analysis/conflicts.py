"""Bandwidth and conflict accounting for a finished simulation.

Explains *where the cache bandwidth went* for one run: accesses accepted
per cycle against the structural peak, the refusal breakdown (bank
conflicts vs line conflicts vs store serialization vs structural MSHR
stalls vs in-order stalls), forwarding, and — for the LBIC — the
combining-group distribution.  This is the quantitative form of the
paper's sections 3–5 discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..common.tables import Table
from ..core.processor import Processor
from ..core.results import SimResult


@dataclass
class BandwidthReport:
    """Where one run's data-cache bandwidth went."""

    label: str
    cycles: int
    peak_accesses_per_cycle: int
    accepted_loads: int
    accepted_stores: int
    forwarded_loads: int
    refusals: Dict[str, int] = field(default_factory=dict)
    busy_cycles: int = 0
    combining_groups: Dict[int, int] = field(default_factory=dict)
    coalesced_stores: int = 0
    drained_stores: int = 0

    @property
    def accepted(self) -> int:
        return self.accepted_loads + self.accepted_stores

    @property
    def accesses_per_cycle(self) -> float:
        return self.accepted / self.cycles if self.cycles else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of structural peak bandwidth actually used."""
        if not self.cycles or not self.peak_accesses_per_cycle:
            return 0.0
        return self.accepted / (self.cycles * self.peak_accesses_per_cycle)

    @property
    def busy_fraction(self) -> float:
        """Fraction of cycles with at least one accepted access."""
        return self.busy_cycles / self.cycles if self.cycles else 0.0

    @property
    def total_refusals(self) -> int:
        return sum(self.refusals.values())

    def refusal_share(self, reason: str) -> float:
        total = self.total_refusals
        if not total:
            return 0.0
        return self.refusals.get(reason, 0) / total

    @property
    def mean_group_size(self) -> float:
        total = sum(self.combining_groups.values())
        if not total:
            return 0.0
        return sum(k * v for k, v in self.combining_groups.items()) / total

    @property
    def combining_fraction(self) -> float:
        """Share of accepted accesses that rode a gated line (group > 1)."""
        if not self.accepted:
            return 0.0
        combined = sum(
            (size - 1) * count for size, count in self.combining_groups.items()
        )
        return combined / self.accepted

    # -- construction ------------------------------------------------------

    @classmethod
    def from_processor(cls, processor: Processor, result: SimResult) -> "BandwidthReport":
        """Build the report from a finished :class:`Processor`."""
        ports = processor.stats.group("ports")
        groups: Dict[int, int] = {}
        histogram = ports._histograms.get("combining_group_size")
        if histogram is not None:
            groups = dict(histogram.items())

        def counter(name: str) -> int:
            try:
                return ports.value(name)
            except KeyError:
                return 0

        return cls(
            label=result.label,
            cycles=result.cycles,
            peak_accesses_per_cycle=processor.ports.peak_accesses_per_cycle,
            accepted_loads=result.accepted_loads,
            accepted_stores=result.accepted_stores,
            forwarded_loads=result.forwarded_loads,
            refusals=dict(result.refusals),
            busy_cycles=counter("busy_cycles"),
            combining_groups=groups,
            coalesced_stores=counter("coalesced_stores"),
            drained_stores=counter("drained_stores"),
        )

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        lines = [
            f"bandwidth report: {self.label}",
            f"  accepted {self.accepted} accesses over {self.cycles} cycles "
            f"({self.accesses_per_cycle:.2f}/cycle, peak "
            f"{self.peak_accesses_per_cycle}, utilization {self.utilization:.1%})",
            f"  busy cycles: {self.busy_fraction:.1%}; forwarded loads: "
            f"{self.forwarded_loads}",
        ]
        if self.total_refusals:
            table = Table(["refusal reason", "count", "share"], precision=3)
            for reason, count in sorted(
                self.refusals.items(), key=lambda item: -item[1]
            ):
                if count:
                    table.add_row([reason, count, self.refusal_share(reason)])
            lines.append(table.render())
        if self.combining_groups:
            lines.append(
                f"  combining: mean group {self.mean_group_size:.2f}, "
                f"{self.combining_fraction:.1%} of accesses combined; "
                f"{self.coalesced_stores} stores coalesced, "
                f"{self.drained_stores} drained"
            )
        return "\n".join(lines)


def compare_reports(reports: List[BandwidthReport]) -> str:
    """Side-by-side one-line-per-run comparison table."""
    table = Table(
        ["run", "acc/cyc", "peak", "util", "fwd", "refusals", "mean group"],
        precision=2,
        title="bandwidth comparison",
    )
    for report in reports:
        table.add_row([
            report.label,
            report.accesses_per_cycle,
            report.peak_accesses_per_cycle,
            report.utilization,
            report.forwarded_loads,
            report.total_refusals,
            report.mean_group_size if report.combining_groups else None,
        ])
    return table.render()
