"""Structured JSON logging for the service daemon.

One JSON object per line on a stream — machine-greppable, joinable with
span exports by ``trace`` ID, and safe to ship to any log pipeline.  The
daemon uses this in place of ad-hoc prints: every lifecycle event
(listening, shutdown) and every handled request emits one line like::

    {"ts": 1733673600.123, "level": "info", "event": "request",
     "trace": "9f2c...", "method": "POST", "path": "/v1/simulate",
     "status": 200, "seconds": 0.004}

The logger is deliberately tiny: no handlers, no levels hierarchy, no
global state — construct one, pass it where it is needed, and a ``None``
logger (the default everywhere) means silence, following the same
null-guard discipline as the tracer and the observer.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Optional, TextIO


class JsonLogger:
    """Emit one JSON object per line to a stream (stdout by default)."""

    __slots__ = ("stream",)

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stdout

    def event(self, event: str, level: str = "info", **fields: Any) -> None:
        """Log one structured event.

        ``fields`` must be JSON-safe; ``None`` values are dropped so
        call sites can pass optional context (a trace ID, say)
        unconditionally.
        """
        record = {"ts": round(time.time(), 6), "level": level, "event": event}
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        self.stream.write(json.dumps(record, sort_keys=True) + "\n")
        self.stream.flush()

    def error(self, event: str, **fields: Any) -> None:
        """Shorthand for ``event(..., level="error")``."""
        self.event(event, level="error", **fields)
