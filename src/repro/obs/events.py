"""Structured event tracing for the timing core.

An :class:`EventTrace` is a bounded ring buffer of simulator events —
dispatch / issue / forward / refusal / fill — each stamped with the
cycle it happened in, the instruction sequence number (when one is
involved), the byte address, and the cache bank (when the port model
defines a bank mapping).  The trace is deliberately lossy in two ways
so it can stay attached to long runs:

* **capacity** — only the most recent ``capacity`` recorded events are
  kept (the ring overwrites the oldest);
* **sample_period** — only every ``sample_period``-th offered event is
  recorded (1 records everything), so the recording cost itself can be
  dialled down on hot runs.

Events are plain JSON-safe dicts end to end: they ride inside
``SimResult.extra`` through the result store and the parallel executor,
and :func:`write_events_jsonl` dumps any event list — live or restored
from the cache — one JSON object per line.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple, Union

from ..common.errors import SimulationError

#: Event kinds recorded by the instrumented core.
KINDS = ("dispatch", "issue", "forward", "blocked", "refusal", "fill")

_Event = Tuple[int, str, Optional[int], Optional[int], Optional[int], Optional[str]]


class EventTrace:
    """A sampling ring buffer of simulator events."""

    __slots__ = ("capacity", "sample_period", "_events", "_offered", "_recorded")

    def __init__(self, capacity: int = 4096, sample_period: int = 1) -> None:
        if capacity < 1:
            raise SimulationError("EventTrace capacity must be >= 1")
        if sample_period < 1:
            raise SimulationError("EventTrace sample_period must be >= 1")
        self.capacity = capacity
        self.sample_period = sample_period
        self._events: Deque[_Event] = deque(maxlen=capacity)
        self._offered = 0   # events presented to the trace
        self._recorded = 0  # events that passed the sampling filter

    def record(
        self,
        cycle: int,
        kind: str,
        seq: Optional[int] = None,
        addr: Optional[int] = None,
        bank: Optional[int] = None,
        detail: Optional[str] = None,
    ) -> None:
        """Offer one event; it is kept if it passes the sampling filter."""
        offered = self._offered
        self._offered = offered + 1
        if offered % self.sample_period:
            return
        self._recorded += 1
        self._events.append((cycle, kind, seq, addr, bank, detail))

    # -- reading ----------------------------------------------------------

    @property
    def offered(self) -> int:
        """Events presented to the trace (before sampling)."""
        return self._offered

    @property
    def recorded(self) -> int:
        """Events that passed the sampling filter (before ring eviction)."""
        return self._recorded

    @property
    def dropped(self) -> int:
        """Recorded events later overwritten by the ring buffer."""
        return self._recorded - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[Dict[str, Union[int, str, None]]]:
        """The surviving events, oldest first, as JSON-safe dicts."""
        out = []
        for cycle, kind, seq, addr, bank, detail in self._events:
            event: Dict[str, Union[int, str, None]] = {
                "cycle": cycle,
                "kind": kind,
                "seq": seq,
                "addr": addr,
                "bank": bank,
            }
            if detail is not None:
                event["detail"] = detail
            out.append(event)
        return out

    def summary(self) -> Dict[str, int]:
        """Bookkeeping counters, JSON-safe."""
        return {
            "offered": self._offered,
            "recorded": self._recorded,
            "kept": len(self._events),
            "capacity": self.capacity,
            "sample_period": self.sample_period,
        }


def write_events_jsonl(
    path, events: Iterable[Dict[str, object]], append: bool = False
) -> int:
    """Write ``events`` (dicts, e.g. from :meth:`EventTrace.events` or a
    restored ``SimResult.extra['trace_events']``) as JSON Lines; returns
    the number of lines written.

    With ``append=True`` the lines are added to an existing file instead
    of replacing it, so incremental exports (per-sweep telemetry, rolling
    traces) can grow one file across several calls.
    """
    count = 0
    with open(path, "a" if append else "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def format_events(events: Iterable[Dict[str, object]]) -> str:
    """Render events as an aligned plain-text listing (CLI output)."""
    lines = []
    for event in events:
        addr = event.get("addr")
        seq = event.get("seq")
        bank = event.get("bank")
        detail = event.get("detail")
        lines.append(
            f"{event.get('cycle', 0):>8}  {str(event.get('kind', '?')):<8} "
            f"seq={'-' if seq is None else seq:<8} "
            f"addr={'-' if addr is None else hex(addr):<12} "
            f"bank={'-' if bank is None else bank}"
            + (f"  [{detail}]" if detail else "")
        )
    return "\n".join(lines)
