"""Cycle-exact stall attribution.

A :class:`CycleAccountant` charges **every simulated cycle to exactly
one bucket**, so the question "where did the bandwidth go?" has a
numeric answer whose parts sum to the run's cycle count (the invariant
the tests enforce).  The buckets mirror the paper's discussion of lost
bandwidth (sections 3-5): port refusals broken down by reason (port
limits, bank conflicts, same-bank/different-line conflicts, store
serialization, store-queue and MSHR structural stalls), window and LSQ
pressure, functional-unit starvation, memory-wait, and the front end
running dry.

One cycle is classified by a fixed precedence, most-diagnostic first:

1. ``commit`` — at least one instruction committed (forward progress).
2. ``frontend_drained`` — the window is empty: nothing in flight, so
   nothing could commit (end-of-stream / drain cycles).
3. ``refusal:<reason>`` — the port model refused at least one access
   this cycle; charged to the *first* refusal reason seen (the oldest
   refused access, since the core offers requests oldest-first).
4. ``ruu_full`` / ``lsq_full`` — dispatch was blocked by a full window
   or a full load/store queue.
5. ``fu_starve`` — a ready operation found no free functional unit.
6. ``disambiguation`` — a ready load was parked behind an unresolved
   earlier store address this cycle.
7. ``mshr_wait`` — the window head is a memory operation in flight and
   misses are outstanding: the cycle is spent waiting on a fill.
8. ``exec_wait`` — everything else: execution latency and true
   dependences.

The accountant reports totals *as of the last commit*, matching
``SimResult.cycles`` (the simulator does not count trailing drain
cycles after the final commit), so ``sum(stalls.values())`` equals the
result's cycle count exactly.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Non-refusal buckets, in classification precedence order.  Refusal
#: buckets are named ``refusal:<reason>`` after the port model's reason
#: labels (see ``repro.memory.ports.base.PortModel.REASONS``).
BASE_BUCKETS = (
    "commit",
    "frontend_drained",
    "ruu_full",
    "lsq_full",
    "fu_starve",
    "disambiguation",
    "mshr_wait",
    "exec_wait",
)

#: Prefix of the per-reason port-refusal buckets.
REFUSAL_PREFIX = "refusal:"


class CycleAccountant:
    """Charges each simulated cycle to exactly one stall bucket."""

    __slots__ = (
        "_totals",
        "_at_last_commit",
        "cycles_seen",
        "_refusal_reason",
        "_dispatch_block",
        "_fu_stall",
        "_load_blocked",
    )

    def __init__(self) -> None:
        self._totals: Dict[str, int] = {}
        # Snapshot of the totals at the most recent commit cycle.  The
        # run's reported cycle count stops at the last commit, so this
        # snapshot is what must sum to ``SimResult.cycles``.
        self._at_last_commit: Dict[str, int] = {}
        self.cycles_seen = 0
        self._refusal_reason: Optional[str] = None
        self._dispatch_block: Optional[str] = None
        self._fu_stall = False
        self._load_blocked = False

    # -- per-cycle signals (called by the instrumented components) --------

    def begin_cycle(self) -> None:
        self._refusal_reason = None
        self._dispatch_block = None
        self._fu_stall = False
        self._load_blocked = False

    def note_refusal(self, reason: str) -> None:
        """A port refusal happened; the first reason of the cycle wins
        (requests are offered oldest-first)."""
        if self._refusal_reason is None:
            self._refusal_reason = reason

    def note_dispatch_block(self, which: str) -> None:
        """Dispatch stopped on a full structure (``ruu_full``/``lsq_full``)."""
        if self._dispatch_block is None:
            self._dispatch_block = which

    def note_fu_stall(self) -> None:
        """A ready non-memory operation found every unit of its class busy."""
        self._fu_stall = True

    def note_load_blocked(self) -> None:
        """A ready load was parked behind an unresolved earlier store
        address (memory disambiguation)."""
        self._load_blocked = True

    def close_cycle(
        self,
        committed: int,
        ruu_empty: bool,
        mem_wait: bool,
        misses_outstanding: bool,
    ) -> str:
        """Classify the cycle that just ended; returns the bucket charged."""
        if committed:
            bucket = "commit"
        elif ruu_empty:
            bucket = "frontend_drained"
        elif self._refusal_reason is not None:
            bucket = REFUSAL_PREFIX + self._refusal_reason
        elif self._dispatch_block is not None:
            bucket = self._dispatch_block
        elif self._fu_stall:
            bucket = "fu_starve"
        elif self._load_blocked:
            bucket = "disambiguation"
        elif mem_wait and misses_outstanding:
            bucket = "mshr_wait"
        else:
            bucket = "exec_wait"
        self._totals[bucket] = self._totals.get(bucket, 0) + 1
        self.cycles_seen += 1
        if committed:
            self._at_last_commit = dict(self._totals)
        return bucket

    def skip_cycles(self, count: int, bucket: str) -> None:
        """Bulk-charge ``count`` cycles to ``bucket`` in one step.

        Used by the simulator's event-horizon cycle skipping: when no
        instruction can make progress until a known future event, the
        clock jumps there and the skipped span is charged here.  Every
        skipped cycle is by construction a zero-commit cycle whose
        classification is constant across the span, so one bulk charge
        is exactly equivalent to ``count`` begin/close pairs — the
        sum-to-cycles invariant is preserved bit-for-bit.
        """
        if count <= 0:
            return
        self._totals[bucket] = self._totals.get(bucket, 0) + count
        self.cycles_seen += count

    # -- reading ----------------------------------------------------------

    def stalls(self) -> Dict[str, int]:
        """Bucket totals as of the last commit — sums exactly to the
        run's reported cycle count."""
        return dict(self._at_last_commit)

    def all_cycles(self) -> Dict[str, int]:
        """Bucket totals over *every* simulated cycle, including the
        drain tail after the final commit."""
        return dict(self._totals)

    def total(self) -> int:
        return sum(self._at_last_commit.values())
