"""Structure-utilization metrics for the timing core.

A :class:`MetricsCollector` samples, once per simulated cycle, the
occupancy of the three structures whose pressure explains the paper's
shapes — the RUU, the LSQ, and the MSHR file — plus the number of
accesses each cache bank accepted that cycle.  The samples accumulate
into sparse ``{value: cycles}`` histograms, so a multi-million-cycle run
costs a handful of dict increments per cycle and a few hundred bytes of
state.

Design constraints, shared with the rest of ``repro.obs``:

* **Off path stays one test.**  The collector rides the
  :class:`~repro.obs.observer.Observer`; with no observer (or no
  metrics) attached the simulator pays one ``is None`` check per cycle.
* **Cycle skipping is invisible.**  During a skipped idle span the
  structure occupancies are provably frozen and the ports are idle, so
  :meth:`MetricsCollector.record_skip` bulk-charges the span and the
  histograms come out bit-identical with skipping on or off.
* **JSON-safe end to end.**  :meth:`MetricsCollector.as_extra` emits
  plain dicts with *string* bucket keys, so a live result and one
  restored from the JSON result store compare equal.

The metrics cover every simulated cycle, warmup excluded but the
post-last-commit drain tail included — the same convention as the stall
accountant's ``all_cycles`` view.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..common.stats import Histogram
from ..common.tables import Table

#: The structures sampled per cycle, in rendering order.
STRUCTURES = ("ruu", "lsq", "mshr")

#: Percentiles reported by the summary views.
PERCENTILES = (50, 90, 99)


class MetricsCollector:
    """Per-cycle occupancy and bank-utilization histograms for one run."""

    __slots__ = ("cycles", "_ruu", "_lsq", "_mshr", "_banks")

    def __init__(self) -> None:
        self.cycles = 0
        self._ruu: Dict[int, int] = {}
        self._lsq: Dict[int, int] = {}
        self._mshr: Dict[int, int] = {}
        #: bank index -> {accesses accepted that cycle: cycle count};
        #: only nonzero samples are stored — idle cycles are inferred
        #: from :attr:`cycles` when the histograms are exported.
        self._banks: Dict[int, Dict[int, int]] = {}

    def record_cycle(
        self,
        ruu: int,
        lsq: int,
        mshr: int,
        bank_sample: Iterable[Tuple[int, int]],
    ) -> None:
        """Charge one simulated cycle.

        ``bank_sample`` yields ``(bank, accesses accepted this cycle)``
        pairs for the banks that accepted anything (see
        :meth:`repro.memory.ports.base.PortModel.bank_accesses_this_cycle`).
        """
        self.cycles += 1
        buckets = self._ruu
        buckets[ruu] = buckets.get(ruu, 0) + 1
        buckets = self._lsq
        buckets[lsq] = buckets.get(lsq, 0) + 1
        buckets = self._mshr
        buckets[mshr] = buckets.get(mshr, 0) + 1
        banks = self._banks
        for bank, accesses in bank_sample:
            if not accesses:
                continue
            per_bank = banks.get(bank)
            if per_bank is None:
                per_bank = banks[bank] = {}
            per_bank[accesses] = per_bank.get(accesses, 0) + 1

    def record_skip(self, count: int, ruu: int, lsq: int, mshr: int) -> None:
        """Charge a skipped idle span of ``count`` cycles in one step.

        The skip precondition guarantees the occupancies are frozen and
        no bank accepts anything for the whole span, so this reproduces
        ``count`` calls to :meth:`record_cycle` with an empty bank
        sample exactly.
        """
        self.cycles += count
        buckets = self._ruu
        buckets[ruu] = buckets.get(ruu, 0) + count
        buckets = self._lsq
        buckets[lsq] = buckets.get(lsq, 0) + count
        buckets = self._mshr
        buckets[mshr] = buckets.get(mshr, 0) + count

    # -- export ------------------------------------------------------------

    def as_extra(self, ports) -> Dict[str, object]:
        """The JSON-safe ``SimResult.extra['metrics']`` payload.

        ``ports`` (the run's :class:`~repro.memory.ports.base.PortModel`)
        supplies the bank geometry so idle bank-cycles can be inferred
        and rendering can compute utilization against peak bandwidth.
        """
        cycles = self.cycles
        per_bank: Dict[str, Dict[str, int]] = {}
        for bank in range(ports.bank_count):
            buckets = dict(self._banks.get(bank, {}))
            idle = cycles - sum(buckets.values())
            if idle:
                buckets[0] = idle
            per_bank[str(bank)] = {
                str(value): count for value, count in sorted(buckets.items())
            }
        config = getattr(ports, "config", None)
        out: Dict[str, object] = {
            "cycles": cycles,
            "occupancy": {
                "ruu": _stringify(self._ruu),
                "lsq": _stringify(self._lsq),
                "mshr": _stringify(self._mshr),
            },
            "ports": {
                "kind": getattr(config, "kind", "unknown"),
                "banks": ports.bank_count,
                "ports_per_bank": ports.ports_per_bank,
                "per_bank": per_bank,
            },
        }
        widths = getattr(ports, "combining_width_buckets", None)
        if widths is not None:
            out["combining_width"] = _stringify(widths())
        return out


def _stringify(buckets: Mapping[int, int]) -> Dict[str, int]:
    return {str(value): count for value, count in sorted(buckets.items())}


# -- summary views over the plain extra dict ------------------------------
#
# Everything below operates on the JSON-safe ``extra["metrics"]`` payload
# so it works identically on live results and results restored from the
# persistent store (the same convention as ``repro.obs.render``).


def occupancy_histogram(metrics: Mapping[str, object], structure: str) -> Histogram:
    """The occupancy histogram of ``structure`` ("ruu"/"lsq"/"mshr")."""
    buckets = metrics["occupancy"][structure]  # type: ignore[index]
    return Histogram.from_buckets(structure, buckets)


def bank_histogram(metrics: Mapping[str, object], bank: int) -> Histogram:
    """Accesses-per-cycle histogram of one bank (idle cycles included)."""
    buckets = metrics["ports"]["per_bank"][str(bank)]  # type: ignore[index]
    return Histogram.from_buckets(f"bank{bank}", buckets)


def occupancy_stats(metrics: Mapping[str, object]) -> Dict[str, Dict[str, float]]:
    """Mean / percentile / max summary per structure."""
    out: Dict[str, Dict[str, float]] = {}
    for structure in STRUCTURES:
        histogram = occupancy_histogram(metrics, structure)
        row: Dict[str, float] = {"mean": histogram.mean()}
        for p in PERCENTILES:
            row[f"p{p}"] = float(histogram.percentile(p))
        row["max"] = float(histogram.max())
        out[structure] = row
    return out


def bank_stats(metrics: Mapping[str, object]) -> List[Dict[str, float]]:
    """Per-bank mean accesses, busy fraction, and utilization vs peak."""
    ports = metrics["ports"]  # type: ignore[index]
    ports_per_bank = max(1, int(ports["ports_per_bank"]))
    out: List[Dict[str, float]] = []
    for bank in range(int(ports["banks"])):
        histogram = bank_histogram(metrics, bank)
        mean = histogram.mean()
        out.append(
            {
                "bank": float(bank),
                "mean_accesses": mean,
                "busy_fraction": histogram.fraction_at_least(1),
                "utilization": mean / ports_per_bank,
            }
        )
    return out


def mean_bank_utilization(metrics: Mapping[str, object]) -> float:
    """Mean fraction of peak bank bandwidth used, averaged over banks."""
    rows = bank_stats(metrics)
    if not rows:
        return 0.0
    return sum(row["utilization"] for row in rows) / len(rows)


def render_metrics(metrics: Mapping[str, object], title: str = "") -> str:
    """Occupancy percentiles + per-bank utilization as aligned tables."""
    occupancy = Table(
        ["structure", "mean", "p50", "p90", "p99", "max"],
        precision=2,
        title=title or None,
    )
    for structure, row in occupancy_stats(metrics).items():
        occupancy.add_row(
            [
                structure,
                row["mean"],
                int(row["p50"]),
                int(row["p90"]),
                int(row["p99"]),
                int(row["max"]),
            ]
        )

    ports = metrics["ports"]  # type: ignore[index]
    banks = Table(
        ["bank", "accesses/cycle", "busy", "utilization"],
        precision=2,
        title=(
            f"per-bank bandwidth ({ports['kind']}, "
            f"{ports['banks']}x{ports['ports_per_bank']} over "
            f"{metrics['cycles']} cycles)"
        ),
    )
    for row in bank_stats(metrics):
        banks.add_row(
            [
                int(row["bank"]),
                row["mean_accesses"],
                f"{100.0 * row['busy_fraction']:.1f}%",
                f"{100.0 * row['utilization']:.1f}%",
            ]
        )

    sections = [occupancy.render(), banks.render()]
    replacement = metrics.get("replacement")
    if replacement:
        # absent on results cached before replacement evidence existed
        evidence = Table(
            ["level", "policy", "hits", "misses", "evictions", "writebacks"],
            precision=0,
            title="replacement evidence (array-level counters)",
        )
        for level in ("l1", "l2"):
            row = replacement.get(level)
            if row:
                evidence.add_row(
                    [
                        level,
                        row["policy"],
                        row["hits"],
                        row["misses"],
                        row["evictions"],
                        row["writebacks"],
                    ]
                )
        sections.append(evidence.render())
    widths = metrics.get("combining_width")
    if widths:
        histogram = Histogram.from_buckets("combining_width", widths)
        combining = Table(
            ["width", "bank-cycles", "share"],
            precision=2,
            title="LBIC combining width (accesses per gated line)",
        )
        total = histogram.total
        for value, count in histogram.items():
            combining.add_row([value, count, f"{100.0 * count / total:.1f}%"])
        sections.append(combining.render())
    return "\n\n".join(sections)


def prometheus_metrics(
    metrics: Mapping[str, object], labels: Optional[Mapping[str, str]] = None
) -> str:
    """Render the metrics in the Prometheus text exposition format.

    Gauges only (the payload is a finished run, not a live process), one
    ``# TYPE`` header per metric family, ``labels`` appended to every
    sample.  The output parses with any Prometheus text-format parser.
    """
    base = dict(labels or {})
    lines: List[str] = []

    def sample(name: str, value: float, **extra: str) -> None:
        merged = {**base, **extra}
        rendered = ",".join(
            f'{key}="{_escape_label(val)}"' for key, val in sorted(merged.items())
        )
        body = f"{{{rendered}}}" if rendered else ""
        lines.append(f"{name}{body} {_format_value(value)}")

    lines.append("# TYPE repro_cycles gauge")
    sample("repro_cycles", float(metrics["cycles"]))  # type: ignore[arg-type]

    lines.append("# TYPE repro_occupancy gauge")
    for structure, row in occupancy_stats(metrics).items():
        for stat, value in row.items():
            sample("repro_occupancy", value, structure=structure, stat=stat)

    rows = bank_stats(metrics)
    lines.append("# TYPE repro_bank_utilization gauge")
    for row in rows:
        sample(
            "repro_bank_utilization",
            row["utilization"],
            bank=str(int(row["bank"])),
        )
    lines.append("# TYPE repro_bank_busy_fraction gauge")
    for row in rows:
        sample(
            "repro_bank_busy_fraction",
            row["busy_fraction"],
            bank=str(int(row["bank"])),
        )

    replacement = metrics.get("replacement")
    if replacement:
        lines.append("# TYPE repro_cache_evictions gauge")
        for level, row in sorted(replacement.items()):
            sample(
                "repro_cache_evictions",
                float(row["evictions"]),
                level=level,
                policy=row["policy"],
            )
        lines.append("# TYPE repro_cache_writebacks gauge")
        for level, row in sorted(replacement.items()):
            sample(
                "repro_cache_writebacks",
                float(row["writebacks"]),
                level=level,
                policy=row["policy"],
            )

    widths = metrics.get("combining_width")
    if widths:
        histogram = Histogram.from_buckets("combining_width", widths)
        lines.append("# TYPE repro_combining_width_mean gauge")
        sample("repro_combining_width_mean", histogram.mean())
    return "\n".join(lines) + "\n"


def escape_label(value: str) -> str:
    """Escape one label value for the Prometheus text format."""
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_sample_value(value: float) -> str:
    """Render one sample value (integers without a trailing ``.0``)."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_sample(
    name: str, value: float, labels: Optional[Mapping[str, str]] = None
) -> str:
    """One text-exposition sample line: ``name{labels} value``.

    Shared by :func:`prometheus_metrics` (finished-run gauges) and the
    service daemon's live ``/metrics`` families, so every exporter in
    the repo escapes and formats identically.
    """
    rendered = ",".join(
        f'{key}="{escape_label(val)}"'
        for key, val in sorted((labels or {}).items())
    )
    body = f"{{{rendered}}}" if rendered else ""
    return f"{name}{body} {format_sample_value(value)}"


# Backwards-friendly private aliases (pre-service internal names).
_escape_label = escape_label
_format_value = format_sample_value
