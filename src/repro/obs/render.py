"""Rendering and validation helpers for stall-attribution data.

These operate on the plain ``{bucket: cycles}`` dicts found in
``SimResult.extra["stalls"]`` so they work identically on live results
and results restored from the persistent store.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..common.errors import SimulationError
from ..common.tables import Table


def verify_stall_invariant(stalls: Mapping[str, int], cycles: int) -> None:
    """Raise :class:`SimulationError` unless the buckets sum to ``cycles``.

    This is the accountant's core guarantee: every cycle is charged to
    exactly one bucket, so the attribution is a complete decomposition
    of the run, not a sampling of it.
    """
    total = sum(stalls.values())
    if total != cycles:
        raise SimulationError(
            f"stall buckets sum to {total}, result has {cycles} cycles "
            f"(buckets: {dict(stalls)})"
        )


def stall_fractions(stalls: Mapping[str, int]) -> Dict[str, float]:
    """Each bucket's share of the total, largest first."""
    total = sum(stalls.values())
    if not total:
        return {}
    ordered = sorted(stalls.items(), key=lambda item: (-item[1], item[0]))
    return {bucket: count / total for bucket, count in ordered}


def render_stalls(stalls: Mapping[str, int], title: str = "") -> str:
    """A cycles/percent breakdown table, largest bucket first."""
    table = Table(
        ["bucket", "cycles", "share"],
        precision=1,
        title=title or None,
    )
    total = sum(stalls.values())
    for bucket, count in sorted(
        stalls.items(), key=lambda item: (-item[1], item[0])
    ):
        share = 100.0 * count / total if total else 0.0
        table.add_row([bucket, count, f"{share:.1f}%"])
    table.add_separator()
    table.add_row(["total", total, "100.0%" if total else "0.0%"])
    return table.render()
