"""Rendering and validation helpers for observability data.

The stall helpers operate on the plain ``{bucket: cycles}`` dicts found
in ``SimResult.extra["stalls"]``; the span helpers operate on the plain
span records of :mod:`repro.obs.tracing` — both work identically on
live data and data restored from disk.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..common.errors import SimulationError
from ..common.tables import Table
from .tracing import critical_path, group_by_trace, span_summary


def verify_stall_invariant(stalls: Mapping[str, int], cycles: int) -> None:
    """Raise :class:`SimulationError` unless the buckets sum to ``cycles``.

    This is the accountant's core guarantee: every cycle is charged to
    exactly one bucket, so the attribution is a complete decomposition
    of the run, not a sampling of it.
    """
    total = sum(stalls.values())
    if total != cycles:
        raise SimulationError(
            f"stall buckets sum to {total}, result has {cycles} cycles "
            f"(buckets: {dict(stalls)})"
        )


def stall_fractions(stalls: Mapping[str, int]) -> Dict[str, float]:
    """Each bucket's share of the total, largest first."""
    total = sum(stalls.values())
    if not total:
        return {}
    ordered = sorted(stalls.items(), key=lambda item: (-item[1], item[0]))
    return {bucket: count / total for bucket, count in ordered}


def render_stalls(stalls: Mapping[str, int], title: str = "") -> str:
    """A cycles/percent breakdown table, largest bucket first."""
    table = Table(
        ["bucket", "cycles", "share"],
        precision=1,
        title=title or None,
    )
    total = sum(stalls.values())
    for bucket, count in sorted(
        stalls.items(), key=lambda item: (-item[1], item[0])
    ):
        share = 100.0 * count / total if total else 0.0
        table.add_row([bucket, count, f"{share:.1f}%"])
    table.add_separator()
    table.add_row(["total", total, "100.0%" if total else "0.0%"])
    return table.render()


# -- span rendering ---------------------------------------------------------


def render_span_tree(
    spans: Iterable[Dict[str, Any]], last: Optional[int] = None
) -> str:
    """Spans as indented per-trace trees (the ``spans view`` listing).

    Each trace renders its roots in record order, children indented
    under their parents, with millisecond durations and attributes.
    ``last`` keeps only the newest N traces (by file/record order).
    """
    grouped = group_by_trace(spans)
    traces = list(grouped.items())
    if last is not None and last > 0:
        traces = traces[-last:]
    lines: List[str] = []
    for trace, records in traces:
        lines.append(f"trace {trace} ({len(records)} span(s))")
        children: Dict[Optional[str], List[Dict[str, Any]]] = {}
        for record in records:
            parent = record.get("parent")
            children.setdefault(
                str(parent) if parent is not None else None, []
            ).append(record)

        def walk(record: Dict[str, Any], depth: int) -> None:
            dur_ms = float(record.get("dur", 0.0)) * 1e3
            attrs = record.get("attrs") or {}
            rendered = " ".join(
                f"{key}={value}" for key, value in sorted(attrs.items())
            )
            lines.append(
                f"  {'  ' * depth}{record.get('name', '?'):<24} "
                f"{dur_ms:>10.3f} ms" + (f"  {rendered}" if rendered else "")
            )
            for child in children.get(str(record.get("span")), []):
                walk(child, depth + 1)

        for root in children.get(None, []):
            walk(root, 0)
        # Orphans (parent outside this batch) still render, flat, so a
        # partially-flushed trace remains inspectable.
        ids = {str(r.get("span")) for r in records}
        for record in records:
            parent = record.get("parent")
            if parent is not None and str(parent) not in ids:
                walk(record, 0)
    return "\n".join(lines)


def render_span_summary(
    spans: Iterable[Dict[str, Any]], top: int = 10
) -> str:
    """Per-name aggregates plus the newest trace's critical path.

    Two tables: span-name totals (count / total / mean / max / share of
    all recorded span time) and the top-N critical-path breakdown of the
    most recent trace — the chain a latency fix must shorten.
    """
    records = list(spans)
    rows = span_summary(records)
    if not rows:
        return "no spans recorded"
    grand_total = sum(row["total"] for row in rows) or 1.0
    table = Table(
        ["span", "count", "total ms", "mean ms", "max ms", "share"],
        title="span totals",
    )
    for row in rows[:top]:
        table.add_row(
            [
                row["name"],
                row["count"],
                f"{row['total'] * 1e3:.3f}",
                f"{row['mean'] * 1e3:.3f}",
                f"{row['max'] * 1e3:.3f}",
                f"{100.0 * row['total'] / grand_total:.1f}%",
            ]
        )
    out = [table.render()]

    grouped = group_by_trace(records)
    if grouped:
        newest_trace, newest = list(grouped.items())[-1]
        path = critical_path(newest)
        if path:
            root_dur = float(path[0].get("dur", 0.0)) or 1.0
            crit = Table(
                ["depth", "span", "ms", "of root"],
                title=f"critical path, trace {newest_trace}",
            )
            for depth, record in enumerate(path[:top]):
                dur = float(record.get("dur", 0.0))
                crit.add_row(
                    [
                        depth,
                        record.get("name", "?"),
                        f"{dur * 1e3:.3f}",
                        f"{100.0 * dur / root_dur:.1f}%",
                    ]
                )
            out.append(crit.render())
    return "\n\n".join(out)
