"""``repro.obs`` — opt-in observability for the timing core.

Two instruments, both carried by an :class:`Observer` passed to
:class:`~repro.core.processor.Processor`:

* :class:`CycleAccountant` — charges every simulated cycle to exactly
  one stall bucket (commit, per-reason port refusals, RUU/LSQ pressure,
  FU starvation, MSHR wait, front-end drain, execution wait); the
  buckets sum exactly to ``SimResult.cycles``.
* :class:`EventTrace` — a sampling ring buffer of structured
  dispatch/issue/forward/refusal/fill events with JSONL export.

Both surface through ``SimResult.extra`` (keys ``stalls``,
``trace_events``, ``trace_summary``), so observed results flow
unchanged through the persistent result store and the parallel
executor.  See ``docs/observability.md``.
"""

from .accountant import BASE_BUCKETS, REFUSAL_PREFIX, CycleAccountant
from .events import EventTrace, format_events, write_events_jsonl
from .observer import Observer
from .render import render_stalls, stall_fractions, verify_stall_invariant

__all__ = [
    "BASE_BUCKETS",
    "CycleAccountant",
    "EventTrace",
    "Observer",
    "REFUSAL_PREFIX",
    "format_events",
    "render_stalls",
    "stall_fractions",
    "verify_stall_invariant",
    "write_events_jsonl",
]
