"""``repro.obs`` — opt-in observability for the timing core.

Two instruments, both carried by an :class:`Observer` passed to
:class:`~repro.core.processor.Processor`:

* :class:`CycleAccountant` — charges every simulated cycle to exactly
  one stall bucket (commit, per-reason port refusals, RUU/LSQ pressure,
  FU starvation, MSHR wait, front-end drain, execution wait); the
  buckets sum exactly to ``SimResult.cycles``.
* :class:`EventTrace` — a sampling ring buffer of structured
  dispatch/issue/forward/refusal/fill events with JSONL export.
* :class:`MetricsCollector` — per-cycle RUU/LSQ/MSHR occupancy and
  per-bank utilization histograms (plus LBIC combining widths), with
  table, JSON, and Prometheus-text export.

All surface through ``SimResult.extra`` (keys ``stalls``,
``trace_events``, ``trace_summary``, ``metrics``), so observed results
flow unchanged through the persistent result store and the parallel
executor.  See ``docs/observability.md``.
"""

from .accountant import BASE_BUCKETS, REFUSAL_PREFIX, CycleAccountant
from .events import EventTrace, format_events, write_events_jsonl
from .jsonlog import JsonLogger
from .metrics import (
    MetricsCollector,
    bank_stats,
    escape_label,
    format_sample_value,
    mean_bank_utilization,
    occupancy_stats,
    prometheus_metrics,
    prometheus_sample,
    render_metrics,
)
from .observer import Observer
from .render import (
    render_span_summary,
    render_span_tree,
    render_stalls,
    stall_fractions,
    verify_stall_invariant,
)
from .tracing import (
    Span,
    Tracer,
    chrome_trace,
    clear_spans,
    critical_path,
    flush_spans,
    group_by_trace,
    load_spans,
    new_span_id,
    new_trace_id,
    read_jsonl_records,
    read_spans_jsonl,
    render_spans_info,
    span_files,
    span_record,
    span_summary,
    verify_span_tree,
)

__all__ = [
    "BASE_BUCKETS",
    "CycleAccountant",
    "EventTrace",
    "JsonLogger",
    "MetricsCollector",
    "Observer",
    "REFUSAL_PREFIX",
    "Span",
    "Tracer",
    "bank_stats",
    "chrome_trace",
    "clear_spans",
    "critical_path",
    "escape_label",
    "flush_spans",
    "format_events",
    "format_sample_value",
    "group_by_trace",
    "load_spans",
    "mean_bank_utilization",
    "new_span_id",
    "new_trace_id",
    "occupancy_stats",
    "prometheus_metrics",
    "prometheus_sample",
    "read_jsonl_records",
    "read_spans_jsonl",
    "render_metrics",
    "render_span_summary",
    "render_span_tree",
    "render_spans_info",
    "render_stalls",
    "span_files",
    "span_record",
    "span_summary",
    "stall_fractions",
    "verify_span_tree",
    "verify_stall_invariant",
    "write_events_jsonl",
]
