"""``repro.obs`` — opt-in observability for the timing core.

Two instruments, both carried by an :class:`Observer` passed to
:class:`~repro.core.processor.Processor`:

* :class:`CycleAccountant` — charges every simulated cycle to exactly
  one stall bucket (commit, per-reason port refusals, RUU/LSQ pressure,
  FU starvation, MSHR wait, front-end drain, execution wait); the
  buckets sum exactly to ``SimResult.cycles``.
* :class:`EventTrace` — a sampling ring buffer of structured
  dispatch/issue/forward/refusal/fill events with JSONL export.
* :class:`MetricsCollector` — per-cycle RUU/LSQ/MSHR occupancy and
  per-bank utilization histograms (plus LBIC combining widths), with
  table, JSON, and Prometheus-text export.

All surface through ``SimResult.extra`` (keys ``stalls``,
``trace_events``, ``trace_summary``, ``metrics``), so observed results
flow unchanged through the persistent result store and the parallel
executor.  See ``docs/observability.md``.
"""

from .accountant import BASE_BUCKETS, REFUSAL_PREFIX, CycleAccountant
from .events import EventTrace, format_events, write_events_jsonl
from .metrics import (
    MetricsCollector,
    bank_stats,
    escape_label,
    format_sample_value,
    mean_bank_utilization,
    occupancy_stats,
    prometheus_metrics,
    prometheus_sample,
    render_metrics,
)
from .observer import Observer
from .render import render_stalls, stall_fractions, verify_stall_invariant

__all__ = [
    "BASE_BUCKETS",
    "CycleAccountant",
    "EventTrace",
    "MetricsCollector",
    "Observer",
    "REFUSAL_PREFIX",
    "bank_stats",
    "escape_label",
    "format_events",
    "format_sample_value",
    "mean_bank_utilization",
    "occupancy_stats",
    "prometheus_metrics",
    "prometheus_sample",
    "render_metrics",
    "render_stalls",
    "stall_fractions",
    "verify_stall_invariant",
    "write_events_jsonl",
]
