"""The observer handle threaded through the timing core.

An :class:`Observer` bundles the two observability instruments — the
:class:`~repro.obs.accountant.CycleAccountant` (always on when an
observer is attached) and an optional
:class:`~repro.obs.events.EventTrace` — behind one object the
simulator components null-check on their hot paths.  With no observer
attached (the default) the entire layer costs one ``is None`` test per
hook site.
"""

from __future__ import annotations

from typing import Optional

from .accountant import CycleAccountant
from .events import EventTrace


class Observer:
    """Stall attribution plus (optionally) event tracing for one run."""

    __slots__ = ("accountant", "trace")

    def __init__(
        self,
        accountant: Optional[CycleAccountant] = None,
        trace: Optional[EventTrace] = None,
    ) -> None:
        self.accountant = accountant if accountant is not None else CycleAccountant()
        self.trace = trace

    @classmethod
    def tracing(
        cls, capacity: int = 4096, sample_period: int = 1
    ) -> "Observer":
        """An observer with event tracing enabled."""
        return cls(trace=EventTrace(capacity=capacity, sample_period=sample_period))
