"""The observer handle threaded through the timing core.

An :class:`Observer` bundles the observability instruments — the
:class:`~repro.obs.accountant.CycleAccountant` (always on when an
observer is attached), an optional
:class:`~repro.obs.events.EventTrace`, and an optional
:class:`~repro.obs.metrics.MetricsCollector` — behind one object the
simulator components null-check on their hot paths.  With no observer
attached (the default) the entire layer costs one ``is None`` test per
hook site.
"""

from __future__ import annotations

from typing import Optional

from .accountant import CycleAccountant
from .events import EventTrace
from .metrics import MetricsCollector


class Observer:
    """Stall attribution plus optional event tracing and metrics."""

    __slots__ = ("accountant", "trace", "metrics")

    def __init__(
        self,
        accountant: Optional[CycleAccountant] = None,
        trace: Optional[EventTrace] = None,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        self.accountant = accountant if accountant is not None else CycleAccountant()
        self.trace = trace
        self.metrics = metrics

    @classmethod
    def tracing(
        cls, capacity: int = 4096, sample_period: int = 1
    ) -> "Observer":
        """An observer with event tracing enabled."""
        return cls(trace=EventTrace(capacity=capacity, sample_period=sample_period))

    @classmethod
    def with_metrics(cls) -> "Observer":
        """An observer with structure-utilization metrics enabled."""
        return cls(metrics=MetricsCollector())
