"""Span tracing: a flight recorder from HTTP accept to the busy loop.

A **span** is one named, timed section of work — a monotonic-clock start,
a duration, and free-form ``key=value`` attributes — tied into a tree by
three identifiers:

* ``trace`` — the trace ID shared by every span of one logical request
  (or one ``run_units`` sweep);
* ``span`` — this span's own ID;
* ``parent`` — the enclosing span's ID (``None`` for a root).

Spans are plain JSON-safe dicts end to end, exactly like the event
traces and the engine telemetry, so they cross process boundaries inside
worker outcomes and persist as JSON Lines under
``<cache root>/traces-spans/`` (same per-invocation file + pruning
discipline as ``<cache root>/telemetry/``).

The clock is :func:`time.monotonic` — ``CLOCK_MONOTONIC`` on Linux,
which is system-wide and survives ``fork()``, so spans recorded inside a
forked pool worker line up on the same timeline as the parent service's
spans without any clock translation.

Design constraints, shared with the rest of ``repro.obs``:

* **Off path stays one test.**  Everything is guarded Observer-style:
  a disabled tracer is simply ``None`` and every instrumentation site
  pays one ``is None`` check.  Tracing never touches a
  :class:`~repro.core.results.SimResult`, so results are bit-identical
  with tracing on or off.
* **Readers never die on torn files.**  A crashed or killed writer can
  leave a truncated last line; :func:`read_jsonl_records` skips and
  *counts* corrupt lines instead of raising, and every reader in the
  repo (span files, telemetry roll-ups) goes through it.

:func:`chrome_trace` converts span records to the Chrome trace-event
JSON format (``{"traceEvents": [...]}`` with ``ph="X"`` complete
events), loadable in Perfetto / ``chrome://tracing`` — see
docs/observability.md for the walkthrough.
"""

from __future__ import annotations

import json
import os
import secrets
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..common.errors import SimulationError

#: Directory (under the cache root) holding exported span JSONL files.
SPAN_DIR = "traces-spans"

#: How many span JSONL files to keep under ``<root>/traces-spans``.
KEEP_FILES = 32

#: Tolerance (seconds) for parent/child nesting checks: spans are
#: stamped with separate clock reads, so a child may formally end a few
#: microseconds after its parent's duration was captured.
NEST_EPSILON = 1e-5


def new_trace_id() -> str:
    """A fresh 16-hex-char trace ID."""
    return secrets.token_hex(8)


def new_span_id() -> str:
    """A fresh 8-hex-char span ID."""
    return secrets.token_hex(4)


def span_record(
    trace: str,
    parent: Optional[str],
    name: str,
    start: float,
    duration: float,
    attrs: Optional[Dict[str, Any]] = None,
    span: Optional[str] = None,
) -> Dict[str, Any]:
    """One finished span as a JSON-safe record.

    The functional entry point for code that has no :class:`Tracer` —
    above all the pool worker (:func:`repro.engine.executor
    .simulate_payload`), which builds its phase spans from raw clock
    reads and ships them back inside the outcome dict.
    """
    record: Dict[str, Any] = {
        "kind": "span",
        "trace": trace,
        "span": span if span is not None else new_span_id(),
        "parent": parent,
        "name": name,
        "start": start,
        "dur": duration,
        "pid": os.getpid(),
    }
    if attrs:
        record["attrs"] = dict(attrs)
    return record


class Span:
    """A live (started, not yet ended) span handed out by a tracer."""

    __slots__ = ("tracer", "trace", "span", "parent", "name", "start", "attrs")

    def __init__(
        self,
        tracer: "Tracer",
        trace: str,
        parent: Optional[str],
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.tracer = tracer
        self.trace = trace
        self.span = new_span_id()
        self.parent = parent
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.start = time.monotonic()

    def annotate(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the live span."""
        self.attrs.update(attrs)

    def end(self, **attrs: Any) -> Dict[str, Any]:
        """Stamp the duration and hand the finished record to the tracer."""
        if attrs:
            self.attrs.update(attrs)
        record = span_record(
            self.trace,
            self.parent,
            self.name,
            self.start,
            time.monotonic() - self.start,
            attrs=self.attrs or None,
            span=self.span,
        )
        self.tracer.add(record)
        return record


class _SpanContext:
    """``with tracer.span(...)`` support; ends the span on exit."""

    __slots__ = ("_span",)

    def __init__(self, span: Span) -> None:
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.annotate(error=repr(exc) if exc else exc_type.__name__)
        self._span.end()


class Tracer:
    """Collects finished span records for one process.

    Instrumentation sites hold ``Optional[Tracer]`` and guard with one
    ``is None`` test, mirroring the :class:`~repro.obs.observer.Observer`
    discipline.  Finished records accumulate until :meth:`drain` hands
    them off (to a JSONL flush, a test, or an export).
    """

    __slots__ = ("spans",)

    def __init__(self) -> None:
        self.spans: List[Dict[str, Any]] = []

    def start(
        self,
        name: str,
        trace: Optional[str] = None,
        parent: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """Begin a span; ``trace=None`` starts a fresh trace (a root)."""
        return Span(self, trace if trace else new_trace_id(), parent, name, attrs)

    def span(
        self,
        name: str,
        trace: Optional[str] = None,
        parent: Optional[str] = None,
        **attrs: Any,
    ) -> _SpanContext:
        """Context-manager form of :meth:`start`; ends on exit."""
        return _SpanContext(self.start(name, trace, parent, **attrs))

    def add(self, record: Dict[str, Any]) -> None:
        """Accept one finished span record (usually via :meth:`Span.end`)."""
        self.spans.append(record)

    def adopt(self, records: Iterable[Dict[str, Any]]) -> int:
        """Accept finished records produced elsewhere (worker outcomes)."""
        count = 0
        for record in records:
            self.spans.append(record)
            count += 1
        return count

    def drain(self) -> List[Dict[str, Any]]:
        """All finished records so far; clears the tracer."""
        records, self.spans = self.spans, []
        return records

    def __len__(self) -> int:
        return len(self.spans)


# -- reading and integrity -------------------------------------------------


def read_jsonl_records(path) -> Tuple[List[Dict[str, Any]], int]:
    """Parse a JSONL file, skipping corrupt lines instead of raising.

    Returns ``(records, corrupt)`` where ``corrupt`` counts lines that
    were non-empty but failed to parse as a JSON object — a torn final
    line from a killed writer being the expected case.  A missing or
    unreadable file reads as ``([], 0)``.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return [], 0
    records: List[Dict[str, Any]] = []
    corrupt = 0
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            corrupt += 1
            continue
        if isinstance(record, dict):
            records.append(record)
        else:
            corrupt += 1
    return records, corrupt


def read_spans_jsonl(path) -> Tuple[List[Dict[str, Any]], int]:
    """Span records in one JSONL file: ``(spans, corrupt line count)``."""
    records, corrupt = read_jsonl_records(path)
    return [r for r in records if r.get("kind") == "span"], corrupt


def load_spans(store_root) -> Tuple[List[Dict[str, Any]], int]:
    """All span records under ``<store_root>/traces-spans``, file order
    oldest-first; returns ``(spans, total corrupt line count)``."""
    spans: List[Dict[str, Any]] = []
    corrupt = 0
    for path in span_files(Path(store_root) / SPAN_DIR):
        records, bad = read_spans_jsonl(path)
        spans.extend(records)
        corrupt += bad
    return spans, corrupt


def group_by_trace(
    spans: Iterable[Dict[str, Any]]
) -> Dict[str, List[Dict[str, Any]]]:
    """Spans grouped by trace ID, preserving record order within each."""
    grouped: Dict[str, List[Dict[str, Any]]] = {}
    for record in spans:
        grouped.setdefault(str(record.get("trace")), []).append(record)
    return grouped


def verify_span_tree(
    spans: Iterable[Dict[str, Any]], epsilon: float = NEST_EPSILON
) -> None:
    """Check structural integrity of a batch of span records.

    Raises :class:`SimulationError` unless, within every trace:

    * span IDs are unique;
    * every non-root span's ``parent`` names a span in the same trace;
    * every child nests within its parent's ``[start, start + dur]``
      window (to within ``epsilon`` seconds of clock-read slop).

    The single-timeline guarantee behind this rests on
    ``CLOCK_MONOTONIC`` being shared across forked workers.
    """
    for trace, records in group_by_trace(spans).items():
        by_id: Dict[str, Dict[str, Any]] = {}
        for record in records:
            span_id = str(record.get("span"))
            if span_id in by_id:
                raise SimulationError(
                    f"trace {trace}: duplicate span id {span_id}"
                )
            by_id[span_id] = record
        for record in records:
            parent_id = record.get("parent")
            if parent_id is None:
                continue
            parent = by_id.get(str(parent_id))
            if parent is None:
                raise SimulationError(
                    f"trace {trace}: span {record.get('span')} "
                    f"({record.get('name')}) names missing parent {parent_id}"
                )
            child_start = float(record["start"])
            child_end = child_start + float(record["dur"])
            parent_start = float(parent["start"])
            parent_end = parent_start + float(parent["dur"])
            if child_start < parent_start - epsilon or child_end > parent_end + epsilon:
                raise SimulationError(
                    f"trace {trace}: span {record.get('name')} "
                    f"[{child_start:.6f}, {child_end:.6f}] escapes parent "
                    f"{parent.get('name')} [{parent_start:.6f}, {parent_end:.6f}]"
                )


# -- Chrome trace-event export ---------------------------------------------


def chrome_trace(spans: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Span records as Chrome trace-event JSON (Perfetto-loadable).

    Every span becomes a ``ph="X"`` *complete* event with microsecond
    ``ts``/``dur``.  Events are laid out one thread row per trace (all
    spans of a request share a row and nest visually by time), with the
    originating OS pid preserved in ``args`` — workers and the service
    stay distinguishable without splitting the timeline per process.
    """
    events: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}
    for record in spans:
        trace = str(record.get("trace"))
        tid = tids.setdefault(trace, len(tids) + 1)
        args: Dict[str, Any] = {
            "trace": trace,
            "span": record.get("span"),
            "parent": record.get("parent"),
            "os_pid": record.get("pid"),
        }
        args.update(record.get("attrs") or {})
        events.append(
            {
                "name": str(record.get("name", "?")),
                "cat": "repro",
                "ph": "X",
                "ts": float(record.get("start", 0.0)) * 1e6,
                "dur": float(record.get("dur", 0.0)) * 1e6,
                "pid": 1,
                "tid": tid,
                "args": args,
            }
        )
    meta: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": "repro-lbic"},
        }
    ]
    for trace, tid in tids.items():
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": f"trace {trace}"},
            }
        )
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


# -- persistence under <cache root>/traces-spans ---------------------------


def flush_spans(store_root, spans: List[Dict[str, Any]]) -> Optional[Path]:
    """Append ``spans`` to this invocation's file under
    ``<store_root>/traces-spans/`` and prune old files.

    Mirrors :func:`repro.engine.telemetry.flush_telemetry`: one file per
    process invocation (timestamp + pid), repeated flushes append, the
    newest :data:`KEEP_FILES` files survive.  Returns the path, or
    ``None`` when there is nothing to write.
    """
    if not spans:
        return None
    from .events import write_events_jsonl

    root = Path(store_root) / SPAN_DIR
    root.mkdir(parents=True, exist_ok=True)
    name = f"{time.strftime('%Y%m%d-%H%M%S')}-{os.getpid()}.jsonl"
    path = root / name
    write_events_jsonl(path, spans, append=True)
    for stale in span_files(root)[:-KEEP_FILES]:
        try:
            stale.unlink()
        except OSError:
            pass
    return path


def span_files(root) -> List[Path]:
    """Span JSONL files under ``root``, oldest first."""
    root = Path(root)
    if not root.is_dir():
        return []
    return sorted(root.glob("*.jsonl"))


def clear_spans(store_root) -> int:
    """Delete exported spans under ``<store_root>/traces-spans``."""
    removed = 0
    for path in span_files(Path(store_root) / SPAN_DIR):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed


def render_spans_info(store_root) -> Optional[str]:
    """Summarize exported spans for ``cache info``; ``None`` when empty."""
    files = span_files(Path(store_root) / SPAN_DIR)
    if not files:
        return None
    total_bytes = 0
    for path in files:
        try:
            total_bytes += path.stat().st_size
        except OSError:
            pass
    spans, corrupt = load_spans(store_root)
    traces = len(group_by_trace(spans))
    line = (
        f"spans:          {len(files)} file(s), "
        f"{total_bytes / 1024:.1f} KiB, "
        f"{len(spans)} span(s) across {traces} trace(s)"
    )
    if corrupt:
        line += f", {corrupt} corrupt line(s) skipped"
    return line


# -- analysis ---------------------------------------------------------------


def span_summary(spans: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-name aggregates: count, total/mean/max seconds, sorted by
    total descending — the ``spans summary`` table's rows."""
    stats: Dict[str, Dict[str, Any]] = {}
    for record in spans:
        name = str(record.get("name", "?"))
        dur = float(record.get("dur", 0.0))
        row = stats.get(name)
        if row is None:
            stats[name] = {"name": name, "count": 1, "total": dur, "max": dur}
        else:
            row["count"] += 1
            row["total"] += dur
            row["max"] = max(row["max"], dur)
    rows = sorted(stats.values(), key=lambda row: -row["total"])
    for row in rows:
        row["mean"] = row["total"] / row["count"]
    return rows


def critical_path(spans: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The longest root-to-leaf chain of one trace's spans.

    Starting from the longest root, repeatedly descend into the child
    with the largest duration.  The returned spans are the trace's
    critical path: the chain a latency optimization must shorten.
    """
    records = list(spans)
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for record in records:
        parent = record.get("parent")
        children.setdefault(
            str(parent) if parent is not None else None, []
        ).append(record)
    roots = children.get(None, [])
    if not roots:
        return []
    path: List[Dict[str, Any]] = []
    node = max(roots, key=lambda r: float(r.get("dur", 0.0)))
    while node is not None:
        path.append(node)
        kids = children.get(str(node.get("span")), [])
        node = max(kids, key=lambda r: float(r.get("dur", 0.0))) if kids else None
    return path
