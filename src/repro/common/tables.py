"""Plain-text table rendering for experiment reports.

The experiment harness prints tables that mirror the layout of the paper's
Tables 2-4 and Figure 3.  Rendering is dependency-free so results display
identically in CI logs and terminals.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(value: Cell, precision: int = 3) -> str:
    """Format a table cell: floats to fixed precision, None as '-',
    NaN (an undefined ratio, e.g. a zero denominator) as 'n/a'."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"
        return f"{value:.{precision}f}"
    return str(value)


class Table:
    """A simple column-aligned text table.

    >>> t = Table(["prog", "ipc"])
    >>> t.add_row(["swim", 3.2])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    prog | ipc
    -----+------
    swim | 3.200
    """

    def __init__(self, headers: Sequence[str], precision: int = 3, title: Optional[str] = None) -> None:
        self.headers = list(headers)
        self.precision = precision
        self.title = title
        self.rows: List[List[str]] = []

    def add_row(self, row: Sequence[Cell]) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([format_cell(cell, self.precision) for cell in row])

    def add_separator(self) -> None:
        """Insert a horizontal rule (rendered as a dashed row)."""
        self.rows.append(["---SEP---"])

    def render(self, markdown: bool = False) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            if row == ["---SEP---"]:
                continue
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def fmt_row(cells: Sequence[str]) -> str:
            padded = [cell.ljust(width) for cell, width in zip(cells, widths)]
            if markdown:
                return "| " + " | ".join(padded) + " |"
            return " | ".join(padded).rstrip()

        rule_cells = ["-" * width for width in widths]
        if markdown:
            rule = "|-" + "-|-".join(rule_cells) + "-|"
        else:
            rule = "-+-".join(rule_cells)

        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_row(self.headers))
        lines.append(rule)
        for row in self.rows:
            if row == ["---SEP---"]:
                lines.append(rule)
            else:
                lines.append(fmt_row(row))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def side_by_side(tables: Iterable[Table], gap: int = 4) -> str:
    """Render several tables next to each other (for compact reports)."""
    blocks = [table.render().split("\n") for table in tables]
    if not blocks:
        return ""
    height = max(len(block) for block in blocks)
    widths = [max(len(line) for line in block) for block in blocks]
    lines = []
    for row in range(height):
        parts = []
        for block, width in zip(blocks, widths):
            text = block[row] if row < len(block) else ""
            parts.append(text.ljust(width))
        lines.append((" " * gap).join(parts).rstrip())
    return "\n".join(lines)
