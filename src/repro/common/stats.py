"""Statistics primitives shared by the simulator and the analyses.

The simulator components record their activity into a :class:`StatGroup`
(a hierarchical registry of counters, ratios and histograms).  Analyses
and the experiment harness read the same objects back, so a single code
path produces both the machine-readable results and the paper-style
tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A sparse integer-valued histogram.

    Used for distributions such as "number of accesses combined per line
    buffer gate" or "bank occupancy per cycle".
    """

    __slots__ = ("name", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets: Dict[int, int] = {}

    def record(self, value: int, count: int = 1) -> None:
        self.buckets[value] = self.buckets.get(value, 0) + count

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s buckets into this histogram and return ``self``.

        Merging is associative and commutative, so per-shard histograms
        (one per worker, one per run) can be folded in any order.
        """
        record = self.record
        for value, count in other.buckets.items():
            record(value, count)
        return self

    @classmethod
    def from_buckets(cls, name: str, buckets: Mapping[object, int]) -> "Histogram":
        """Build a histogram from a plain bucket mapping.

        Accepts string bucket keys (the JSON round-trip through
        ``SimResult.extra`` stringifies int keys) and coerces them back.
        """
        histogram = cls(name)
        for value, count in buckets.items():
            histogram.record(int(value), int(count))
        return histogram

    @property
    def total(self) -> int:
        return sum(self.buckets.values())

    def percentile(self, p: float) -> int:
        """Smallest recorded value covering at least ``p`` percent of mass.

        ``p`` is clamped to [0, 100]; an empty histogram reports 0.  The
        result is monotonically non-decreasing in ``p``, with
        ``percentile(0)`` the minimum recorded value and
        ``percentile(100)`` the maximum.
        """
        total = self.total
        if total == 0:
            return 0
        p = min(max(p, 0.0), 100.0)
        needed = max(1, math.ceil(total * p / 100.0))
        cumulative = 0
        value = 0
        for value, count in sorted(self.buckets.items()):
            cumulative += count
            if cumulative >= needed:
                return value
        return value

    def mean(self) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return sum(value * count for value, count in self.buckets.items()) / total

    def fraction_at_least(self, threshold: int) -> float:
        total = self.total
        if total == 0:
            return 0.0
        hits = sum(count for value, count in self.buckets.items() if value >= threshold)
        return hits / total

    def max(self) -> int:
        return max(self.buckets) if self.buckets else 0

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(sorted(self.buckets.items()))

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.total}, mean={self.mean():.3f})"


class RunningMean:
    """Numerically stable running mean/variance (Welford)."""

    __slots__ = ("name", "count", "_mean", "_m2")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def record(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)


class StatNameCollision(ValueError):
    """A stat name is already registered under a different kind.

    ``StatGroup.as_dict()`` flattens counters, histograms, means and
    child groups into one namespace; allowing a counter and a histogram
    to share a name would make one silently overwrite the other in the
    serialized form.
    """


class StatGroup:
    """A named registry of statistics with nested sub-groups.

    Components create their stats once at construction time and bump them
    on the hot path; the registry makes every stat discoverable for
    reporting without the components knowing about the reporter.

    Names are unique across all four kinds (counter, histogram, running
    mean, child group) because :meth:`as_dict` flattens them into a
    single mapping; registering the same name under two kinds raises
    :class:`StatNameCollision`.
    """

    def __init__(self, name: str = "root") -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._means: Dict[str, RunningMean] = {}
        self._children: Dict[str, "StatGroup"] = {}

    def _claim(self, name: str, kind: Dict[str, object]) -> None:
        for other in (self._counters, self._histograms, self._means, self._children):
            if other is not kind and name in other:
                raise StatNameCollision(
                    f"stat name {name!r} in group {self.name!r} is already "
                    "registered under a different kind; as_dict() would "
                    "silently drop one of them"
                )

    def counter(self, name: str) -> Counter:
        """Return the counter called ``name``, creating it if needed."""
        stat = self._counters.get(name)
        if stat is None:
            self._claim(name, self._counters)
            stat = self._counters[name] = Counter(name)
        return stat

    def histogram(self, name: str) -> Histogram:
        stat = self._histograms.get(name)
        if stat is None:
            self._claim(name, self._histograms)
            stat = self._histograms[name] = Histogram(name)
        return stat

    def running_mean(self, name: str) -> RunningMean:
        stat = self._means.get(name)
        if stat is None:
            self._claim(name, self._means)
            stat = self._means[name] = RunningMean(name)
        return stat

    def group(self, name: str) -> "StatGroup":
        child = self._children.get(name)
        if child is None:
            self._claim(name, self._children)
            child = self._children[name] = StatGroup(name)
        return child

    # -- reading ---------------------------------------------------------

    def value(self, path: str) -> int:
        """Read a counter by slash-separated path, e.g. ``"lsq/forwards"``."""
        group, leaf = self._resolve(path)
        return group._counters[leaf].value

    def ratio(self, numerator: str, denominator: str) -> float:
        """Return counter(numerator) / counter(denominator), 0 if empty."""
        denom = self.value(denominator)
        if denom == 0:
            return 0.0
        return self.value(numerator) / denom

    def _resolve(self, path: str) -> Tuple["StatGroup", str]:
        parts = path.split("/")
        group: StatGroup = self
        for part in parts[:-1]:
            group = group._children[part]
        return group, parts[-1]

    def as_dict(self) -> Dict[str, object]:
        """Flatten the registry into plain data for serialization."""
        out: Dict[str, object] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, histogram in self._histograms.items():
            out[name] = dict(histogram.items())
        for name, mean in self._means.items():
            out[name] = {"mean": mean.mean, "stdev": mean.stdev, "n": mean.count}
        for name, child in self._children.items():
            out[name] = child.as_dict()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StatGroup({self.name!r}, {sorted(self._counters)})"


@dataclass
class Distribution:
    """A finite discrete distribution over labelled categories.

    The Figure 3 analysis and the workload calibration targets both use
    this type, so "measured" and "paper" distributions compare with the
    same arithmetic.
    """

    weights: Dict[str, float] = field(default_factory=dict)

    def normalized(self) -> "Distribution":
        total = sum(self.weights.values())
        if total <= 0:
            return Distribution(dict.fromkeys(self.weights, 0.0))
        return Distribution({k: v / total for k, v in self.weights.items()})

    def __getitem__(self, key: str) -> float:
        return self.weights.get(key, 0.0)

    def total_variation_distance(self, other: "Distribution") -> float:
        """Half the L1 distance between the normalized distributions."""
        mine = self.normalized().weights
        theirs = other.normalized().weights
        keys = set(mine) | set(theirs)
        return 0.5 * sum(abs(mine.get(k, 0.0) - theirs.get(k, 0.0)) for k in keys)

    @classmethod
    def from_counts(cls, counts: Mapping[str, int]) -> "Distribution":
        return cls({k: float(v) for k, v in counts.items()})


def weighted_average(pairs: Iterable[Tuple[float, float]]) -> float:
    """Weighted mean of ``(value, weight)`` pairs; 0.0 when empty."""
    total_weight = 0.0
    accum = 0.0
    for value, weight in pairs:
        accum += value * weight
        total_weight += weight
    return accum / total_weight if total_weight else 0.0


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; raises ValueError on non-positive inputs."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean; raises ValueError on non-positive inputs."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)
