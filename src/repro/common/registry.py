"""Declarative mechanism registry: named, typed building blocks.

A *mechanism* is one interchangeable implementation choice of the
simulated machine — a cache port model, a replacement policy, a cache
geometry preset.  Mechanisms register under a ``(category, name)`` pair
with a factory whose signature *is* the typed parameter schema (frozen
dataclasses with eager validation, or :func:`functools.partial` presets
over one)::

    @register_mechanism("port_model", "lbic")
    class LBICConfig(PortModelConfig):
        ...

    register_mechanism("cache_geometry", "paper-l1",
                       partial(CacheGeometry, size_bytes=32 * 1024, ...))

Lookups go through :func:`mechanism` / :func:`build`; an unknown name
raises :class:`~repro.common.errors.ConfigError` listing the registered
alternatives, and a duplicate registration raises immediately — two
mechanisms may never silently shadow each other.

The registry is intentionally import-cycle-free: it depends only on
:mod:`repro.common.errors`.  Categories whose implementations live in
heavier modules (e.g. replacement policies under :mod:`repro.memory`)
are *lazy*: the first lookup imports the providing module, which
registers its mechanisms as a side effect of import.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, List, Mapping, Optional

from .errors import ConfigError

#: category -> name -> factory (a class or any callable taking keyword
#: params and returning the configured mechanism value).
_REGISTRY: Dict[str, Dict[str, Callable[..., Any]]] = {}

#: Lazy providers: importing the module registers the category's
#: mechanisms.  Kept here (not in the providing modules) so a lookup
#: can succeed before anything else has imported them.
_PROVIDERS: Dict[str, str] = {
    "port_model": "repro.common.config",
    "cache_geometry": "repro.common.config",
    "replacement_policy": "repro.memory.replacement",
    "backend": "repro.core.backends",
}


def register_mechanism(
    category: str, name: str, factory: Optional[Callable[..., Any]] = None
):
    """Register ``factory`` as mechanism ``name`` in ``category``.

    Usable directly (``register_mechanism(cat, name, cls)``) or as a
    class decorator (``@register_mechanism(cat, name)``).  Registering a
    name twice in one category raises :class:`ConfigError`.
    """

    def _register(target: Callable[..., Any]) -> Callable[..., Any]:
        table = _REGISTRY.setdefault(category, {})
        if name in table:
            raise ConfigError(
                f"mechanism {name!r} is already registered in category "
                f"{category!r} (as {table[name]!r})"
            )
        table[name] = target
        return target

    if factory is None:
        return _register
    return _register(factory)


def unregister_mechanism(category: str, name: str) -> None:
    """Remove one registration (test hygiene; no-op if absent)."""
    _REGISTRY.get(category, {}).pop(name, None)


def _table(category: str) -> Dict[str, Callable[..., Any]]:
    table = _REGISTRY.get(category)
    if table:
        return table
    provider = _PROVIDERS.get(category)
    if provider is not None:
        importlib.import_module(provider)
        table = _REGISTRY.get(category)
    if not table:
        raise ConfigError(
            f"unknown mechanism category {category!r}; known categories: "
            f"{', '.join(categories())}"
        )
    return table


def mechanism(category: str, name: str) -> Callable[..., Any]:
    """The factory registered under ``(category, name)``.

    Unknown names raise :class:`ConfigError` naming every registered
    alternative, so a typo in a pack file or CLI flag is a one-line fix.
    """
    table = _table(category)
    try:
        return table[name]
    except KeyError:
        raise ConfigError(
            f"unknown {category} {name!r}; registered {category} "
            f"mechanisms: {', '.join(sorted(table))}"
        ) from None


def build(category: str, name: str, **params: Any) -> Any:
    """Instantiate mechanism ``name`` with ``params``.

    Parameter validation is the factory's own (the config dataclasses
    validate eagerly in ``__post_init__``); an unexpected or missing
    parameter surfaces as :class:`ConfigError` naming the mechanism.
    """
    factory = mechanism(category, name)
    try:
        return factory(**params)
    except TypeError as error:
        raise ConfigError(
            f"bad parameters for {category} {name!r}: {error}"
        ) from None


def mechanism_names(category: str) -> List[str]:
    """Sorted names registered in ``category`` (loading it if lazy)."""
    return sorted(_table(category))


def categories() -> List[str]:
    """Every known category, registered or lazily providable."""
    return sorted(set(_REGISTRY) | set(_PROVIDERS))


def config_from_dict(
    category: str, data: Mapping[str, Any], tag: str = "kind"
) -> Any:
    """Rebuild a registered mechanism from its ``to_dict()`` form.

    The dict must carry the mechanism name under ``tag`` (``"kind"`` for
    port models); remaining keys are the factory's keyword parameters.
    Unknown names and bad parameters raise :class:`ConfigError` — never
    a bare ``KeyError``/``TypeError``.
    """
    fields = dict(data)
    name = fields.pop(tag, None)
    if name is None:
        raise ConfigError(
            f"{category} data is missing its {tag!r} tag; registered "
            f"{category} mechanisms: {', '.join(mechanism_names(category))}"
        )
    return build(category, name, **fields)
