"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError, ValueError):
    """A configuration value is invalid or inconsistent.

    Raised during configuration validation (for example a cache whose line
    size is not a power of two, or an LBIC with zero buffer ports).
    """


class SimulationError(ReproError, RuntimeError):
    """The simulator reached an internally inconsistent state.

    This indicates a bug in the simulator or a structural misuse of its API
    (for example committing an instruction that never issued), never a bad
    user parameter.
    """


class WorkloadError(ReproError, ValueError):
    """A workload model or trace is malformed or misused."""


class AssemblyError(ReproError, ValueError):
    """A mini-ISA assembly source could not be parsed or encoded."""


class TraceFormatError(ReproError, ValueError):
    """A trace file is corrupt or has an unsupported version."""


class AnalysisError(ReproError, ValueError):
    """An analysis was requested over data that cannot support it."""
