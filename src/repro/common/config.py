"""Typed configuration for every simulated component.

All knobs of the simulated machine live here as frozen dataclasses with
eager validation, so an experiment is fully described by one
:class:`MachineConfig` value.  The defaults reproduce the paper's baseline
processor/memory model (Table 1 of the paper):

* 64-wide fetch/issue/commit, 1024-entry RUU, 512-entry LSQ,
* perfect instruction supply and branch prediction,
* 64 of each functional unit class, load/store units sized to the cache
  port model,
* 32 KB direct-mapped write-back write-allocate L1 with 32 B lines and a
  1-cycle hit, 512 KB 4-way L2 with 64 B lines and 4-cycle access,
  10-cycle main memory, fully pipelined L1->L2 with up to 64 outstanding
  misses.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from functools import partial
from typing import Any, Dict, Optional, Tuple

from .errors import ConfigError
from .registry import config_from_dict, mechanism, register_mechanism
from .serialize import fingerprint_of


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    if not is_power_of_two(value):
        raise ConfigError(f"{value} is not a power of two")
    return value.bit_length() - 1


def _validate_replacement(name: str) -> None:
    """A cache level's ``replacement`` must be a registered mechanism.

    Routed through the registry, so an unknown name fails eagerly at
    config construction with the list of valid choices (the policy
    implementations themselves live in :mod:`repro.memory.replacement`
    and load lazily on first lookup).
    """
    mechanism("replacement_policy", name)


# ---------------------------------------------------------------------------
# Functional units (paper Table 1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FuTiming:
    """Latency pair for one functional-unit class.

    ``total`` is the operation latency in cycles; ``issue`` is the
    initiation interval (cycles before the unit accepts another op).
    The paper writes these as "total/issue".
    """

    total: int
    issue: int

    def __post_init__(self) -> None:
        _require(self.total >= 1, "total latency must be >= 1")
        _require(1 <= self.issue <= self.total, "issue interval must be in [1, total]")

    def to_dict(self) -> Dict[str, Any]:
        return {"total": self.total, "issue": self.issue}


#: Operation-class timing from Table 1 of the paper.
PAPER_FU_TIMINGS: Dict[str, FuTiming] = {
    "IALU": FuTiming(total=1, issue=1),
    "IMULT": FuTiming(total=3, issue=1),
    "IDIV": FuTiming(total=12, issue=12),
    "FADD": FuTiming(total=2, issue=1),
    "FMULT": FuTiming(total=4, issue=1),
    "FDIV": FuTiming(total=12, issue=12),
    "LOAD": FuTiming(total=1, issue=1),
    "STORE": FuTiming(total=1, issue=1),
}


@dataclass(frozen=True)
class FuPoolConfig:
    """Counts and timings of the functional-unit pools.

    ``ls_units`` of 0 means "match the cache port model's peak accesses per
    cycle", which is how the paper sizes its varying number of L/S units.
    """

    ialu: int = 64
    imult: int = 64
    fadd: int = 64
    fmult: int = 64
    ls_units: int = 0
    timings: Tuple[Tuple[str, FuTiming], ...] = tuple(sorted(PAPER_FU_TIMINGS.items()))

    def __post_init__(self) -> None:
        for name, count in (
            ("ialu", self.ialu),
            ("imult", self.imult),
            ("fadd", self.fadd),
            ("fmult", self.fmult),
        ):
            _require(count >= 1, f"{name} count must be >= 1")
        _require(self.ls_units >= 0, "ls_units must be >= 0 (0 = match cache ports)")
        timing_names = {name for name, _ in self.timings}
        missing = set(PAPER_FU_TIMINGS) - timing_names
        _require(not missing, f"missing FU timings for {sorted(missing)}")

    def timing(self, opclass_name: str) -> FuTiming:
        for name, timing in self.timings:
            if name == opclass_name:
                return timing
        raise ConfigError(f"no timing configured for op class {opclass_name!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ialu": self.ialu,
            "imult": self.imult,
            "fadd": self.fadd,
            "fmult": self.fmult,
            "ls_units": self.ls_units,
            "timings": [
                [name, timing.to_dict()]
                for name, timing in sorted(self.timings)
            ],
        }


# ---------------------------------------------------------------------------
# Core
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (paper Table 1 defaults)."""

    fetch_width: int = 64
    issue_width: int = 64
    commit_width: int = 64
    ruu_size: int = 1024
    lsq_size: int = 512
    fu: FuPoolConfig = field(default_factory=FuPoolConfig)

    def __post_init__(self) -> None:
        _require(self.fetch_width >= 1, "fetch_width must be >= 1")
        _require(self.issue_width >= 1, "issue_width must be >= 1")
        _require(self.commit_width >= 1, "commit_width must be >= 1")
        _require(self.ruu_size >= 2, "ruu_size must be >= 2")
        _require(self.lsq_size >= 1, "lsq_size must be >= 1")
        _require(
            self.lsq_size <= self.ruu_size,
            "lsq_size cannot exceed ruu_size (every LSQ entry has an RUU entry)",
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fetch_width": self.fetch_width,
            "issue_width": self.issue_width,
            "commit_width": self.commit_width,
            "ruu_size": self.ruu_size,
            "lsq_size": self.lsq_size,
            "fu": self.fu.to_dict(),
        }


# ---------------------------------------------------------------------------
# Caches and memory
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CacheGeometry:
    """Size/associativity/line geometry of one cache level."""

    size_bytes: int
    line_size: int
    associativity: int

    def __post_init__(self) -> None:
        _require(is_power_of_two(self.size_bytes), "cache size must be a power of two")
        _require(is_power_of_two(self.line_size), "line size must be a power of two")
        _require(self.line_size >= 4, "line size must be >= 4 bytes")
        _require(self.associativity >= 1, "associativity must be >= 1")
        _require(
            self.size_bytes % (self.line_size * self.associativity) == 0,
            "size must be a multiple of line_size * associativity",
        )
        _require(self.num_sets >= 1, "cache must have at least one set")
        _require(
            is_power_of_two(self.num_sets),
            "number of sets must be a power of two for bit-selection indexing",
        )

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    @property
    def offset_bits(self) -> int:
        return log2_exact(self.line_size)

    @property
    def index_bits(self) -> int:
        return log2_exact(self.num_sets)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "size_bytes": self.size_bytes,
            "line_size": self.line_size,
            "associativity": self.associativity,
        }


@dataclass(frozen=True)
class L1Config:
    """L1 data cache: geometry plus timing and miss-handling limits."""

    geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(size_bytes=32 * 1024, line_size=32, associativity=1)
    )
    hit_latency: int = 1
    mshr_entries: int = 64
    writeback: bool = True
    write_allocate: bool = True
    #: replacement-policy mechanism name (see
    #: :mod:`repro.memory.replacement`); part of the fingerprint, so
    #: results under different policies never collide in the cache.
    replacement: str = "lru"

    def __post_init__(self) -> None:
        _require(self.hit_latency >= 1, "hit latency must be >= 1")
        _require(self.mshr_entries >= 1, "must have at least one MSHR")
        _validate_replacement(self.replacement)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "geometry": self.geometry.to_dict(),
            "hit_latency": self.hit_latency,
            "mshr_entries": self.mshr_entries,
            "writeback": self.writeback,
            "write_allocate": self.write_allocate,
            "replacement": self.replacement,
        }


@dataclass(frozen=True)
class L2Config:
    """Unified L2: geometry, access latency, and L1->L2 request pipelining."""

    geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(size_bytes=512 * 1024, line_size=64, associativity=4)
    )
    access_latency: int = 4
    max_outstanding: int = 64
    #: replacement-policy mechanism name (see :class:`L1Config`).
    replacement: str = "lru"

    def __post_init__(self) -> None:
        _require(self.access_latency >= 1, "L2 latency must be >= 1")
        _require(self.max_outstanding >= 1, "L2 must allow >= 1 outstanding request")
        _validate_replacement(self.replacement)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "geometry": self.geometry.to_dict(),
            "access_latency": self.access_latency,
            "max_outstanding": self.max_outstanding,
            "replacement": self.replacement,
        }


@dataclass(frozen=True)
class MainMemoryConfig:
    """Flat main-memory latency (the paper uses just 10 cycles: this is a
    bandwidth study, not a latency study)."""

    access_latency: int = 10

    def __post_init__(self) -> None:
        _require(self.access_latency >= 1, "memory latency must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return {"access_latency": self.access_latency}


# ---------------------------------------------------------------------------
# Cache port models (the paper's design space)
# ---------------------------------------------------------------------------

#: Bank-selection functions supported by the banked and LBIC organizations.
BANK_FUNCTIONS = ("bit-select", "xor-fold", "fibonacci")


@dataclass(frozen=True)
class PortModelConfig:
    """Base class for the four cache port organizations."""

    @property
    def kind(self) -> str:
        raise NotImplementedError

    @property
    def peak_accesses_per_cycle(self) -> int:
        """Upper bound on data-cache accesses accepted in one cycle."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-data form: every field plus a ``kind`` tag."""
        data: Dict[str, Any] = {"kind": self.kind}
        data.update(asdict(self))
        return data

    def fingerprint(self) -> str:
        """Stable content hash of this port model (see
        :mod:`repro.common.serialize`); the cache key component that
        replaces the old order- and formatting-fragile ``repr()``."""
        return fingerprint_of(self.to_dict())


@dataclass(frozen=True)
class IdealPortConfig(PortModelConfig):
    """Ideal (true) multi-porting: p ports, any address combination."""

    ports: int = 1

    def __post_init__(self) -> None:
        _require(self.ports >= 1, "ideal cache needs >= 1 port")

    @property
    def kind(self) -> str:
        return "ideal"

    @property
    def peak_accesses_per_cycle(self) -> int:
        return self.ports

    def describe(self) -> str:
        return f"{self.ports}-port ideal"


@dataclass(frozen=True)
class ReplicatedPortConfig(PortModelConfig):
    """Multi-porting by replication (Alpha 21164 style).

    p identical cache copies, one port each.  Loads use any free port; a
    store must broadcast to all copies, so no other access can be accepted
    in a store's cycle.
    """

    ports: int = 2

    def __post_init__(self) -> None:
        _require(self.ports >= 1, "replicated cache needs >= 1 copy")

    @property
    def kind(self) -> str:
        return "replicated"

    @property
    def peak_accesses_per_cycle(self) -> int:
        return self.ports

    def describe(self) -> str:
        return f"{self.ports}-port replicated"


#: Interleaving granularities for the banked organization.  The paper
#: uses line interleaving (Fig. 2c) and discusses word interleaving as
#: the vector-supercomputer alternative that is "costly due to the need
#: for tag replication in each bank" (section 3.2 footnote).
BANK_INTERLEAVINGS = ("line", "word")


@dataclass(frozen=True)
class BankedPortConfig(PortModelConfig):
    """Multi-bank (interleaved) cache (MIPS R10000 style).

    M banks; simultaneous accesses must target distinct banks (unless
    ``ports_per_bank`` > 1).  The bank function defaults to bit
    selection of the address bits directly above the interleaving
    granule: the line offset for line interleaving (paper Figure 2c),
    the 8-byte word offset for word interleaving (the paper's discussed
    alternative, which spreads same-line accesses across banks at the
    cost of replicated tags).  ``ports_per_bank`` > 1 models the
    multi-ported-bank combinations of Sohi & Franklin.
    """

    banks: int = 2
    bank_function: str = "bit-select"
    interleave: str = "line"
    ports_per_bank: int = 1
    #: extra cycles every load pays to traverse the interconnect.  The
    #: paper's baseline "does not add additional time for traversing the
    #: crossbar"; non-zero values model unpipelined crossbars or omega
    #: networks (section 3.2 discussion).
    crossbar_latency: int = 0
    #: when True, an arriving line fill occupies its bank for that cycle
    #: (the paper leaves fill-port arbitration unspecified; the baseline
    #: assumes a separate fill port).
    fills_occupy_bank: bool = False

    def __post_init__(self) -> None:
        _require(self.banks >= 1, "banked cache needs >= 1 bank")
        _require(is_power_of_two(self.banks), "bank count must be a power of two")
        _require(
            self.bank_function in BANK_FUNCTIONS,
            f"bank_function must be one of {BANK_FUNCTIONS}",
        )
        _require(
            self.interleave in BANK_INTERLEAVINGS,
            f"interleave must be one of {BANK_INTERLEAVINGS}",
        )
        _require(self.ports_per_bank >= 1, "ports_per_bank must be >= 1")
        _require(self.crossbar_latency >= 0, "crossbar_latency must be >= 0")

    @property
    def kind(self) -> str:
        return "banked"

    @property
    def peak_accesses_per_cycle(self) -> int:
        return self.banks * self.ports_per_bank

    def describe(self) -> str:
        ports = f", {self.ports_per_bank} ports/bank" if self.ports_per_bank > 1 else ""
        return (
            f"{self.banks}-bank {self.interleave}-interleaved "
            f"({self.bank_function}{ports})"
        )


#: LSQ access-selection policies for the LBIC (paper section 5.2).
COMBINING_POLICIES = ("leading-request", "largest-group")


@dataclass(frozen=True)
class LBICConfig(PortModelConfig):
    """Locality-Based Interleaved Cache: M banks x N-ported line buffers.

    An M x N LBIC is a line-interleaved M-bank cache where each bank owns a
    single-line buffer with N ports.  Per cycle, the oldest ready request
    to a bank (the *leading request*) gates its line into the buffer and up
    to N-1 further ready requests to the *same line* combine with it.
    Stores deposit into a per-bank store queue that drains to the array on
    bank-idle cycles.
    """

    banks: int = 4
    buffer_ports: int = 2
    store_queue_depth: int = 8
    bank_function: str = "bit-select"
    combining_policy: str = "leading-request"
    #: extra cycles every load pays to traverse the interconnect
    crossbar_latency: int = 0
    #: when True, an arriving line fill occupies its bank for that cycle
    fills_occupy_bank: bool = False

    def __post_init__(self) -> None:
        _require(self.banks >= 1, "LBIC needs >= 1 bank")
        _require(is_power_of_two(self.banks), "bank count must be a power of two")
        _require(self.buffer_ports >= 1, "LBIC line buffer needs >= 1 port")
        _require(self.store_queue_depth >= 1, "store queue depth must be >= 1")
        _require(
            self.bank_function in BANK_FUNCTIONS,
            f"bank_function must be one of {BANK_FUNCTIONS}",
        )
        _require(
            self.combining_policy in COMBINING_POLICIES,
            f"combining_policy must be one of {COMBINING_POLICIES}",
        )
        _require(self.crossbar_latency >= 0, "crossbar_latency must be >= 0")

    @property
    def kind(self) -> str:
        return "lbic"

    @property
    def peak_accesses_per_cycle(self) -> int:
        return self.banks * self.buffer_ports

    def describe(self) -> str:
        return f"{self.banks}x{self.buffer_ports} LBIC ({self.combining_policy})"


# ---------------------------------------------------------------------------
# Whole machine
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to instantiate one simulated machine."""

    core: CoreConfig = field(default_factory=CoreConfig)
    l1: L1Config = field(default_factory=L1Config)
    l2: L2Config = field(default_factory=L2Config)
    memory: MainMemoryConfig = field(default_factory=MainMemoryConfig)
    ports: PortModelConfig = field(default_factory=lambda: IdealPortConfig(ports=1))

    def __post_init__(self) -> None:
        banks = getattr(self.ports, "banks", 1)
        _require(
            self.l1.geometry.num_sets % banks == 0,
            "L1 set count must be divisible by the bank count",
        )
        _require(
            self.l2.geometry.line_size >= self.l1.geometry.line_size,
            "L2 line size must be >= L1 line size",
        )

    @property
    def ls_units(self) -> int:
        """Effective number of load/store units feeding the cache."""
        if self.core.fu.ls_units:
            return self.core.fu.ls_units
        return self.ports.peak_accesses_per_cycle

    def with_ports(self, ports: PortModelConfig) -> "MachineConfig":
        """Return a copy of this machine with a different port model."""
        return replace(self, ports=ports)

    def to_dict(self) -> Dict[str, Any]:
        """Lossless plain-data form (see :func:`machine_config_from_dict`)."""
        return {
            "core": self.core.to_dict(),
            "l1": self.l1.to_dict(),
            "l2": self.l2.to_dict(),
            "memory": self.memory.to_dict(),
            "ports": self.ports.to_dict(),
        }

    def fingerprint(self) -> str:
        """Stable content hash over every knob of the machine."""
        return fingerprint_of(self.to_dict())

    def describe(self) -> str:
        return (
            f"{self.core.issue_width}-wide core, RUU={self.core.ruu_size}, "
            f"LSQ={self.core.lsq_size}, L1={self.l1.geometry.size_bytes // 1024}KB/"
            f"{self.l1.geometry.line_size}B, ports={self.ports.describe()}"
        )


# ---------------------------------------------------------------------------
# Mechanism registrations.  Port models register under their ``kind`` tag;
# cache geometries register as named presets (``functools.partial`` over
# :class:`CacheGeometry`, so call-site keywords override the preset's), so
# experiment packs can name a geometry instead of spelling out its fields.
# ---------------------------------------------------------------------------

register_mechanism("port_model", "ideal", IdealPortConfig)
register_mechanism("port_model", "replicated", ReplicatedPortConfig)
register_mechanism("port_model", "banked", BankedPortConfig)
register_mechanism("port_model", "lbic", LBICConfig)

register_mechanism("cache_geometry", "custom", CacheGeometry)
register_mechanism(
    "cache_geometry",
    "paper-l1",
    partial(CacheGeometry, size_bytes=32 * 1024, line_size=32, associativity=1),
)
register_mechanism(
    "cache_geometry",
    "paper-l2",
    partial(CacheGeometry, size_bytes=512 * 1024, line_size=64, associativity=4),
)
register_mechanism(
    "cache_geometry",
    "small-l1",
    partial(CacheGeometry, size_bytes=8 * 1024, line_size=32, associativity=1),
)
register_mechanism(
    "cache_geometry",
    "small-4way-l1",
    partial(CacheGeometry, size_bytes=4 * 1024, line_size=32, associativity=4),
)


# ---------------------------------------------------------------------------
# Reconstruction from plain data (the inverse of the ``to_dict`` methods).
# The forms accepted are exactly what ``to_dict`` emits, before or after a
# JSON round trip (tuples come back as lists), so configs can cross process
# boundaries and live in the on-disk result cache.
# ---------------------------------------------------------------------------


def port_model_from_dict(data: Dict[str, Any]) -> PortModelConfig:
    """Rebuild a :class:`PortModelConfig` from its ``to_dict()`` form.

    Routed through the mechanism registry (see
    :func:`repro.common.registry.config_from_dict`): an unknown ``kind``
    raises :class:`ConfigError` naming the registered alternatives.
    """
    return config_from_dict("port_model", data)


def geometry_from_dict(data: Dict[str, Any]) -> CacheGeometry:
    """Build a :class:`CacheGeometry` from plain data.

    Accepts either raw geometry fields (the ``to_dict()`` form) or a
    registry reference — ``{"mechanism": "paper-l1", ...overrides}`` —
    where remaining keys override the preset's parameters.
    """
    fields = dict(data)
    name = fields.pop("mechanism", "custom")
    factory = mechanism("cache_geometry", name)
    try:
        return factory(**fields)
    except TypeError as error:
        raise ConfigError(
            f"bad parameters for cache_geometry {name!r}: {error}"
        ) from None


def _fu_pool_from_dict(data: Dict[str, Any]) -> FuPoolConfig:
    timings = tuple(
        (name, FuTiming(**timing)) for name, timing in data["timings"]
    )
    return FuPoolConfig(
        ialu=data["ialu"],
        imult=data["imult"],
        fadd=data["fadd"],
        fmult=data["fmult"],
        ls_units=data["ls_units"],
        timings=timings,
    )


def machine_config_from_dict(data: Dict[str, Any]) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from its ``to_dict()`` form."""
    try:
        core = data["core"]
        return MachineConfig(
            core=CoreConfig(
                fetch_width=core["fetch_width"],
                issue_width=core["issue_width"],
                commit_width=core["commit_width"],
                ruu_size=core["ruu_size"],
                lsq_size=core["lsq_size"],
                fu=_fu_pool_from_dict(core["fu"]),
            ),
            l1=L1Config(
                geometry=geometry_from_dict(data["l1"]["geometry"]),
                hit_latency=data["l1"]["hit_latency"],
                mshr_entries=data["l1"]["mshr_entries"],
                writeback=data["l1"]["writeback"],
                write_allocate=data["l1"]["write_allocate"],
                replacement=data["l1"].get("replacement", "lru"),
            ),
            l2=L2Config(
                geometry=geometry_from_dict(data["l2"]["geometry"]),
                access_latency=data["l2"]["access_latency"],
                max_outstanding=data["l2"]["max_outstanding"],
                replacement=data["l2"].get("replacement", "lru"),
            ),
            memory=MainMemoryConfig(**data["memory"]),
            ports=port_model_from_dict(data["ports"]),
        )
    except (KeyError, TypeError) as error:
        raise ConfigError(f"bad machine config data: {error!r}") from None


def paper_machine(ports: Optional[PortModelConfig] = None) -> MachineConfig:
    """The paper's baseline machine (Table 1) with the given port model."""
    return MachineConfig(ports=ports or IdealPortConfig(ports=1))


def small_machine(ports: Optional[PortModelConfig] = None) -> MachineConfig:
    """A scaled-down machine for fast unit tests.

    8-wide core with a 64-entry RUU / 32-entry LSQ and an 8 KB L1.  Timing
    structure is identical to the paper machine; only capacities shrink.
    """
    return MachineConfig(
        core=CoreConfig(
            fetch_width=8,
            issue_width=8,
            commit_width=8,
            ruu_size=64,
            lsq_size=32,
            fu=FuPoolConfig(ialu=8, imult=8, fadd=8, fmult=8),
        ),
        l1=L1Config(
            geometry=CacheGeometry(size_bytes=8 * 1024, line_size=32, associativity=1)
        ),
        ports=ports or IdealPortConfig(ports=1),
    )
