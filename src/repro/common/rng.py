"""Deterministic random-number streams.

Every stochastic component in the library (workload models, synthetic
trace generators, calibration noise) draws from a :class:`RngStream`
derived from a single master seed, so that any experiment is exactly
reproducible from its configuration alone.

Streams are named: ``RngStream.for_component(seed, "swim", "addresses")``
always yields the same stream for the same ``(seed, names...)`` tuple and
an independent-looking stream for any other tuple.  The derivation uses a
stable hash (SHA-256), not Python's randomized ``hash()``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence


def derive_seed(master_seed: int, *names: str) -> int:
    """Derive a child seed from ``master_seed`` and a component path.

    The derivation is stable across processes and Python versions.

    >>> derive_seed(42, "swim") == derive_seed(42, "swim")
    True
    >>> derive_seed(42, "swim") != derive_seed(42, "mgrid")
    True
    """
    payload = repr((int(master_seed),) + tuple(names)).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


class RngStream(random.Random):
    """A named, reproducible random stream.

    Subclasses :class:`random.Random`, adding convenience draws used by the
    workload kernels (weighted choices over small tables, geometric run
    lengths) and a record of how the stream was derived so errors and logs
    can identify it.
    """

    def __init__(self, seed: int, path: Sequence[str] = ()) -> None:
        self.path = tuple(path)
        self.master_seed = int(seed)
        super().__init__(derive_seed(seed, *self.path))

    @classmethod
    def for_component(cls, master_seed: int, *names: str) -> "RngStream":
        """Create the canonical stream for a named component."""
        return cls(master_seed, names)

    def child(self, *names: str) -> "RngStream":
        """Derive a sub-stream; children of distinct names are independent."""
        return RngStream(self.master_seed, self.path + tuple(names))

    def geometric(self, mean: float) -> int:
        """Draw a geometric run length with the given mean (>= 1).

        Used for burst lengths (for example the number of consecutive
        same-line references a kernel emits).
        """
        if mean <= 1.0:
            return 1
        # P(stop) per step chosen so the expected length equals ``mean``.
        p_stop = 1.0 / mean
        length = 1
        while self.random() >= p_stop:
            length += 1
        return length

    def weighted_index(self, weights: Sequence[float]) -> int:
        """Return an index drawn proportionally to ``weights``.

        Weights need not be normalized; they must be non-negative with a
        positive sum.
        """
        total = 0.0
        for w in weights:
            if w < 0:
                raise ValueError("weights must be non-negative")
            total += w
        if total <= 0.0:
            raise ValueError("weights must have a positive sum")
        target = self.random() * total
        acc = 0.0
        for index, w in enumerate(weights):
            acc += w
            if target < acc:
                return index
        return len(weights) - 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStream(seed={self.master_seed}, path={'/'.join(self.path)})"
