"""Canonical serialization and fingerprinting primitives.

The engine caches simulation results on disk keyed by a *fingerprint* of
everything that determines the run: the machine configuration, the
benchmark, and the run settings.  A fingerprint must be stable across
processes and Python versions, insensitive to dict insertion order, and
sensitive to every field value — properties ``repr()`` does not give
(it depends on field *order* and formatting, and silently collides when
a ``__repr__`` omits a field).

Fingerprints are the sha256 hex digest of the canonical JSON encoding:
sorted keys, no whitespace, and tuples normalized to lists (JSON has no
tuple type, so ``(1, 2)`` and ``[1, 2]`` must hash identically or a
round trip through the on-disk cache would change the key).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def canonical_json(data: Any) -> str:
    """Encode ``data`` as deterministic JSON (sorted keys, no spaces)."""
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def fingerprint_of(data: Any) -> str:
    """The sha256 hex digest of the canonical JSON encoding of ``data``."""
    return hashlib.sha256(canonical_json(data).encode("ascii")).hexdigest()
