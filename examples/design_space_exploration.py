#!/usr/bin/env python
"""Design-space exploration: performance vs die area across organizations.

Sweeps ideal/replicated/banked/LBIC configurations over a benchmark,
scores each with the RBE area model, and reports the Pareto frontier —
the cost/performance argument of the paper's sections 1 and 6 made
explicit.

Usage::

    python examples/design_space_exploration.py [benchmark]
"""

import sys

from repro import (
    BankedPortConfig,
    IdealPortConfig,
    LBICConfig,
    ReplicatedPortConfig,
    paper_machine,
    simulate,
)
from repro.common.tables import Table
from repro.cost.area import cache_area
from repro.workloads import spec95_workload

INSTRUCTIONS = 10_000
WARMUP = 30_000

DESIGN_SPACE = [
    ("ideal-1", IdealPortConfig(1)),
    ("ideal-2", IdealPortConfig(2)),
    ("ideal-4", IdealPortConfig(4)),
    ("repl-2", ReplicatedPortConfig(2)),
    ("repl-4", ReplicatedPortConfig(4)),
    ("bank-2", BankedPortConfig(banks=2)),
    ("bank-4", BankedPortConfig(banks=4)),
    ("bank-8", BankedPortConfig(banks=8)),
    ("bank-4w", BankedPortConfig(banks=4, interleave="word")),
    ("bank-4x2p", BankedPortConfig(banks=4, ports_per_bank=2)),
    ("lbic-2x2", LBICConfig(banks=2, buffer_ports=2)),
    ("lbic-2x4", LBICConfig(banks=2, buffer_ports=4)),
    ("lbic-4x2", LBICConfig(banks=4, buffer_ports=2)),
    ("lbic-4x4", LBICConfig(banks=4, buffer_ports=4)),
    ("lbic-8x2", LBICConfig(banks=8, buffer_ports=2)),
    ("lbic-8x4", LBICConfig(banks=8, buffer_ports=4)),
]


def pareto_frontier(points):
    """Points not dominated in (smaller area, larger IPC)."""
    frontier = []
    for label, area, ipc in points:
        dominated = any(
            other_area <= area and other_ipc >= ipc
            and (other_area < area or other_ipc > ipc)
            for _, other_area, other_ipc in points
        )
        if not dominated:
            frontier.append(label)
    return frontier


def main() -> int:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "swim"
    l1 = paper_machine().l1
    points = []

    table = Table(
        ["design", "peak acc/cyc", "area (kRBE)", "IPC", "IPC per MRBE"],
        precision=3,
        title=f"Design space for {benchmark!r} ({INSTRUCTIONS} timed instructions)",
    )
    for label, ports in DESIGN_SPACE:
        workload = spec95_workload(benchmark)
        result = simulate(
            paper_machine(ports),
            workload.stream(seed=1, max_instructions=INSTRUCTIONS + WARMUP),
            max_instructions=INSTRUCTIONS,
            warmup_instructions=WARMUP,
            label=label,
        )
        area = cache_area(ports, l1).total
        points.append((label, area, result.ipc))
        table.add_row([
            label,
            ports.peak_accesses_per_cycle,
            round(area / 1000, 1),
            result.ipc,
            result.ipc / (area / 1e6),
        ])
    print(table.render())

    frontier = pareto_frontier(points)
    print()
    print("Pareto frontier (no design is both cheaper and faster):")
    for label, area, ipc in sorted(points, key=lambda p: p[1]):
        marker = " <-- frontier" if label in frontier else ""
        print(f"  {label:10s} area={area / 1000:8.1f} kRBE  IPC={ipc:6.3f}{marker}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
