#!/usr/bin/env python
"""Why the paper simulates whole programs (section 2.3), demonstrated.

"Memory reference patterns can vary among different phases of program
execution ... A sampled or a minimal partial simulation may fail to
capture such a trend and is therefore likely to present a distorted
picture."

This example builds a two-phase program — a bandwidth-hungry streaming
phase alternating with a compute phase — and shows that:

1. per-window IPC genuinely swings between phases;
2. sampling any single window misestimates whole-program IPC badly;
3. the *design ranking itself* can flip depending on which phase you
   happen to sample.

Usage::

    python examples/phase_sampling_risk.py
"""

from repro import (
    BankedPortConfig,
    LBICConfig,
    paper_machine,
    simulate,
)
from repro.common.tables import Table
from repro.workloads import (
    KernelMix,
    PhasedWorkload,
    RegionAllocator,
    RegisterPool,
    SequentialWalkKernel,
    StatisticalWorkload,
    windowed_ipc,
)

PHASE = 4_000
WINDOW = 2_000
WINDOWS = 8


def build_program() -> PhasedWorkload:
    registers = RegisterPool()
    regions = RegionAllocator()
    streaming = KernelMix(
        "streaming-phase",
        kernels=[
            (SequentialWalkKernel(registers, regions, region_bytes=1024 * 1024,
                                  stride=8, refs_per_burst=4, store_every=4,
                                  fp=True, consume_ops=2), 1.0),
        ],
        registers=registers,
        target_mem_fraction=0.45,
        target_ipc=12.0,
    )
    compute = StatisticalWorkload(
        "compute-phase", mem_fraction=0.06, dependency_degree=2
    )
    return PhasedWorkload.of(
        (streaming, PHASE), (compute, PHASE), name="two-phase"
    )


def main() -> int:
    program = build_program()
    designs = [
        ("4-bank", BankedPortConfig(banks=4)),
        ("4x4 LBIC", LBICConfig(banks=4, buffer_ports=4)),
    ]

    table = Table(
        ["window"] + [label for label, _ in designs],
        precision=2,
        title=f"Per-window IPC ({WINDOW} instructions per window)",
    )
    per_design = {}
    for label, ports in designs:
        per_design[label] = windowed_ipc(
            program, paper_machine(ports), window=WINDOW, windows=WINDOWS
        )
    for index in range(WINDOWS):
        phase = program.phase_at(index * WINDOW)
        phase_name = "stream" if phase == 0 else "compute"
        table.add_row(
            [f"{index} ({phase_name})"]
            + [per_design[label][index] for label, _ in designs]
        )
    print(table.render())
    print()

    whole = {}
    for label, ports in designs:
        result = simulate(
            paper_machine(ports),
            program.stream(seed=1, max_instructions=WINDOW * WINDOWS),
        )
        whole[label] = result.ipc
    print("whole-program IPC:",
          ", ".join(f"{label}={value:.2f}" for label, value in whole.items()))
    print()
    for label in whole:
        samples = per_design[label]
        print(f"{label}: single-window estimates range "
              f"{min(samples):.2f}-{max(samples):.2f} "
              f"(truth {whole[label]:.2f}) -> sampling error up to "
              f"{max(abs(s - whole[label]) / whole[label] for s in samples):.0%}")
    print()
    print("Conclusion: any single sampled window misrepresents the program —")
    print("the paper's justification for simulating to completion (sec. 2.3).")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
