#!/usr/bin/env python
"""Quickstart: simulate one benchmark on the paper's four cache designs.

Runs the calibrated `swim` model (the paper's bank-conflict showcase) on
a 4-port ideal cache, a 4-port replicated cache, a 4-bank interleaved
cache and a 4x4 LBIC, and prints the IPC of each — reproducing the
paper's headline comparison in ~30 seconds.

Usage::

    python examples/quickstart.py [benchmark] [instructions]
"""

import sys

from repro import (
    BankedPortConfig,
    IdealPortConfig,
    LBICConfig,
    ReplicatedPortConfig,
    paper_machine,
    simulate,
)
from repro.workloads import spec95_workload

WARMUP = 30_000


def main() -> int:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "swim"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 15_000

    designs = [
        ("4-port ideal (True)", IdealPortConfig(ports=4)),
        ("4-port replicated (Repl)", ReplicatedPortConfig(ports=4)),
        ("4-bank interleaved (Bank)", BankedPortConfig(banks=4)),
        ("4x4 LBIC", LBICConfig(banks=4, buffer_ports=4)),
    ]

    print(f"benchmark: {benchmark}, {instructions} timed instructions "
          f"(+{WARMUP} cache warm-up)")
    print(f"machine:   {paper_machine().describe()}")
    print()

    baseline = None
    for label, ports in designs:
        workload = spec95_workload(benchmark)
        result = simulate(
            paper_machine(ports),
            workload.stream(seed=1, max_instructions=instructions + WARMUP),
            max_instructions=instructions,
            warmup_instructions=WARMUP,
            label=label,
        )
        if baseline is None:
            baseline = result.ipc
        extras = ""
        if result.combined_accesses:
            extras = (f"  [{result.combined_accesses} combined accesses, "
                      f"{result.forwarded_loads} forwarded loads]")
        print(f"{label:28s} IPC = {result.ipc:6.3f} "
              f"({result.ipc / baseline:4.2f}x vs ideal){extras}")

    print()
    print("The LBIC recovers most of the banked cache's conflict losses by")
    print("combining same-line accesses — at a fraction of the ideal or")
    print("replicated design's die area (see examples/design_space_exploration.py).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
