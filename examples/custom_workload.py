#!/usr/bin/env python
"""Custom workloads: drive the simulator with your own code.

Two paths are shown:

1. **Assembly**: write a mini-ISA kernel (here: DAXPY), execute it with
   the functional interpreter, and time the resulting dynamic stream on
   different cache organizations — the same execution-driven structure
   SimpleScalar uses.
2. **Kernel mix**: compose a synthetic benchmark model from the burst
   kernel library with explicit memory-fraction and ILP targets, the way
   the built-in SPEC95 models are built.

Usage::

    python examples/custom_workload.py
"""

from repro import (
    BankedPortConfig,
    IdealPortConfig,
    LBICConfig,
    paper_machine,
    simulate,
)
from repro.isa import assemble, run_program
from repro.workloads import (
    KernelMix,
    RegionAllocator,
    RegisterPool,
    SameLineBurstKernel,
    SequentialWalkKernel,
)

#: DAXPY: y[i] += a * x[i] over 512 elements, unrolled by two.
DAXPY = """
        li   r1, 256          # iterations (512 elements / 2 unroll)
        li   r2, 0x10000      # x
        li   r3, 0x20000      # y
loop:
        fld  f1, 0(r2)
        fld  f2, 0(r3)
        fmul f3, f1, f10
        fadd f4, f2, f3
        fst  f4, 0(r3)
        fld  f5, 8(r2)
        fld  f6, 8(r3)
        fmul f7, f5, f10
        fadd f8, f6, f7
        fst  f8, 8(r3)
        addi r2, r2, 16
        addi r3, r3, 16
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
"""


def run_assembly_example() -> None:
    print("=== 1. assembled DAXPY kernel ===")
    program = assemble(DAXPY, name="daxpy")
    print(f"{len(program)} static instructions; first lines:")
    print("\n".join(program.disassemble().splitlines()[:6]))
    print()

    for label, ports in (
        ("1-port ideal", IdealPortConfig(1)),
        ("4-bank", BankedPortConfig(banks=4)),
        ("4x2 LBIC", LBICConfig(banks=4, buffer_ports=2)),
    ):
        result = simulate(paper_machine(ports), run_program(assemble(DAXPY)))
        print(f"  {label:14s} IPC={result.ipc:5.2f}  "
              f"mem={result.mem_fraction:4.1%}  "
              f"fwd={result.forwarded_loads} loads")
    print()


def run_kernel_mix_example() -> None:
    print("=== 2. custom kernel mix ===")
    registers = RegisterPool()
    regions = RegionAllocator()
    mix = KernelMix(
        "my-workload",
        kernels=[
            # a streaming scan with same-line locality
            (SequentialWalkKernel(registers, regions, region_bytes=256 * 1024,
                                  stride=8, refs_per_burst=4, store_every=4,
                                  consume_ops=2), 1.0),
            # clustered record updates
            (SameLineBurstKernel(registers, regions, region_bytes=16 * 1024,
                                 refs_per_line=3, stores_per_line=1,
                                 consume_ops=1), 0.5),
        ],
        registers=registers,
        target_mem_fraction=0.35,
        target_ipc=8.0,
    )
    print(mix.describe())
    for label, ports in (
        ("2-port ideal", IdealPortConfig(2)),
        ("4x4 LBIC", LBICConfig(banks=4, buffer_ports=4)),
    ):
        result = simulate(
            paper_machine(ports),
            mix.stream(seed=1, max_instructions=40_000),
            max_instructions=10_000,
            warmup_instructions=30_000,
        )
        print(f"  {label:14s} IPC={result.ipc:5.2f}")


def main() -> int:
    run_assembly_example()
    run_kernel_mix_example()
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
