#!/usr/bin/env python
"""Reference-stream analysis: reproduce the paper's Figure 3 reasoning.

For each benchmark model, classify consecutive memory references by
where they land in an infinite 4-bank cache, then show how that predicts
which cache organization wins:

* high ``B-same-line``  -> combining (LBIC) recovers the conflicts;
* high ``B-diff-line``  -> conflicts that neither banking nor combining
  can remove (swim);
* mass spread over other banks -> plain banking already works.

Usage::

    python examples/reference_stream_analysis.py [benchmarks...]
"""

import sys

from repro.analysis.reference_stream import categories
from repro.common.tables import Table
from repro.experiments.figure3 import run_figure3
from repro.experiments.runner import RunSettings
from repro.workloads.spec95 import ALL_NAMES


def main() -> int:
    names = tuple(sys.argv[1:]) or ALL_NAMES
    settings = RunSettings(benchmarks=names, characterization_instructions=80_000)
    result = run_figure3(settings)

    print(result.render())
    print()

    table = Table(
        ["program", "same-bank", "combinable share", "prediction"],
        precision=2,
        title="What the mapping predicts (paper section 4)",
    )
    for name, mapping in result.rows.items():
        same_bank = mapping.same_bank_fraction()
        combinable = mapping.combinable_conflict_fraction()
        if same_bank < 0.35:
            prediction = "banking alone is fine"
        elif combinable > 0.6:
            prediction = "LBIC combining recovers most conflicts"
        else:
            prediction = "conflicts resist combining (needs banks/hashing)"
        table.add_row([name, same_bank, combinable, prediction])
    print(table.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
