"""A10/A11 — pricing the paper's latency-related modelling assumptions.

The baseline follows the paper: no crossbar traversal latency and a
dedicated fill port.  These sweeps show both assumptions are benign for
the conclusions: the out-of-order window hides small interconnect
latencies, and fill-port steals cost little at LBIC bandwidth levels.
"""

import pytest

from conftest import bench_settings, once
from repro.experiments.ablations import ablate_crossbar_latency, ablate_fill_port

BENCHES = ("li", "swim", "su2cor")


@pytest.fixture(scope="module")
def crossbar():
    return ablate_crossbar_latency(bench_settings(benchmarks=BENCHES))


@pytest.fixture(scope="module")
def fill_port():
    return ablate_fill_port(bench_settings(benchmarks=BENCHES))


def test_crossbar_latency_regeneration(benchmark):
    settings = bench_settings(benchmarks=("swim",))
    banked, lbic = once(benchmark, lambda: ablate_crossbar_latency(settings))
    print()
    print(banked.render())
    print()
    print(lbic.render())


def test_fill_port_regeneration(benchmark):
    settings = bench_settings(benchmarks=("su2cor",))
    result = once(benchmark, lambda: ablate_fill_port(settings))
    print()
    print(result.render())


class TestLatencyAssumptions:
    def test_small_crossbar_latency_mostly_hidden(self, crossbar):
        """The OOO window hides 1-2 cycles of interconnect latency on
        parallel codes — justifying the paper's zero-latency crossbar."""
        banked, lbic = crossbar
        print()
        print(banked.render())
        print(lbic.render())
        for sweep in (banked, lbic):
            zero = sweep.average()[0]
            two = sweep.average()[-1]
            assert two > 0.85 * zero

    def test_fill_port_steal_is_benign(self, fill_port):
        """Fills stealing bank cycles moves IPC by only a few percent at
        LBIC bandwidth levels — the documented simplification is safe."""
        print()
        print(fill_port.render())
        dedicated, steals = fill_port.average()
        assert steals > 0.90 * dedicated

    def test_interconnect_cost_tradeoff(self):
        """Omega network cheaper than crossbar for large configurations
        (paper section 3.2)."""
        from repro.cost.area import interconnect_area

        assert interconnect_area(16, 16, "omega") < interconnect_area(
            16, 16, "crossbar"
        )
        # for tiny configurations the crossbar is fine
        assert interconnect_area(2, 2, "crossbar") <= interconnect_area(
            2, 2, "omega"
        ) * 2
