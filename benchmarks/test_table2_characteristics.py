"""E1 — regenerate Table 2 (benchmark memory characteristics)."""

import pytest

from conftest import once
from repro.experiments.table2 import run_table2
from repro.workloads.spec95 import ALL_NAMES, PAPER_TARGETS, TOLERANCES


@pytest.fixture(scope="module")
def table2(settings):
    return run_table2(settings)


def test_table2_regeneration(benchmark, settings):
    result = once(benchmark, lambda: run_table2(settings))
    print()
    print(result.render())
    assert set(result.rows) == set(settings.benchmarks)


class TestTable2Shape:
    def test_mem_fractions_match_paper(self, table2):
        for name, row in table2.rows.items():
            assert row.measured.mem_fraction == pytest.approx(
                PAPER_TARGETS[name].mem_fraction,
                abs=TOLERANCES["mem_fraction"],
            ), name

    def test_store_ratios_match_paper(self, table2):
        for name, row in table2.rows.items():
            assert row.measured.store_to_load_ratio == pytest.approx(
                PAPER_TARGETS[name].store_to_load,
                abs=TOLERANCES["store_to_load"],
            ), name

    def test_miss_rates_match_paper(self, table2):
        for name, row in table2.rows.items():
            assert row.measured.miss_rate == pytest.approx(
                PAPER_TARGETS[name].miss_rate, abs=TOLERANCES["miss_rate"]
            ), name

    def test_miss_rate_ordering_preserved(self, table2):
        """su2cor highest, li lowest — as in the paper's Table 2."""
        rates = {n: r.measured.miss_rate for n, r in table2.rows.items()}
        if {"su2cor", "li"} <= set(rates):
            assert max(rates, key=rates.get) == "su2cor"
            assert min(rates, key=rates.get) == "li"
