"""A6 — line vs word interleaving (paper section 3.2 footnote).

Word interleaving spreads same-line accesses across banks — the vector
supercomputer technique — but "is costly since the tag store would need
to be replicated or multi-ported", and it cannot fix power-of-two array
aliasing.  The sweep quantifies both halves of the argument.
"""

import pytest

from conftest import bench_settings, once
from repro.common.config import BankedPortConfig, L1Config
from repro.cost.area import cache_area
from repro.experiments.ablations import ablate_interleaving

BENCHES = ("li", "gcc", "swim", "mgrid")


@pytest.fixture(scope="module")
def sweep():
    return ablate_interleaving(bench_settings(benchmarks=BENCHES))


def test_interleaving_regeneration(benchmark):
    settings = bench_settings(benchmarks=("li", "swim"))
    result = once(benchmark, lambda: ablate_interleaving(settings))
    print()
    print(result.render())


class TestInterleavingShape:
    def test_word_interleaving_rescues_same_line_codes(self, sweep):
        """li's conflicts are overwhelmingly same-line: word interleaving
        removes them."""
        print()
        print(sweep.render())
        line, word = sweep.ipcs["li"]
        assert word > line * 1.15

    def test_word_interleaving_cannot_fix_swim(self, sweep):
        """swim's arrays alias at 512-byte granularity — same bank under
        word interleaving too.  The gain must stay modest."""
        line, word = sweep.ipcs["swim"]
        assert word < line * 1.35

    def test_tag_replication_cost(self):
        """The paper's cost objection: the word-interleaved tag store is
        replicated in every bank a line spans."""
        l1 = L1Config()
        line_cfg = BankedPortConfig(banks=4, interleave="line")
        word_cfg = BankedPortConfig(banks=4, interleave="word")
        line_tags = cache_area(line_cfg, l1).tag_array
        word_tags = cache_area(word_cfg, l1).tag_array
        assert word_tags == pytest.approx(4 * line_tags)  # 4 words/32B line
