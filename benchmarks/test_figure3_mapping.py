"""E3 — regenerate Figure 3 (consecutive-reference mapping analysis)."""

import pytest

from conftest import bench_settings, once
from repro.experiments.figure3 import render_bank_sweep, run_bank_sweep, run_figure3
from repro.workloads.spec95 import (
    PAPER_TARGETS,
    SPECFP_NAMES,
    SPECINT_NAMES,
    TOLERANCES,
)


@pytest.fixture(scope="module")
def figure3(settings):
    return run_figure3(settings)


def test_figure3_regeneration(benchmark, settings):
    result = once(benchmark, lambda: run_figure3(settings))
    print()
    print(result.render())
    assert set(result.rows) == set(settings.benchmarks)


class TestFigure3Shape:
    def test_per_benchmark_same_line_targets(self, figure3):
        for name, mapping in figure3.rows.items():
            assert mapping.fraction("B-same-line") == pytest.approx(
                PAPER_TARGETS[name].fig3_same_line,
                abs=TOLERANCES["fig3_same_line"],
            ), name

    def test_per_benchmark_diff_line_targets(self, figure3):
        for name, mapping in figure3.rows.items():
            assert mapping.fraction("B-diff-line") == pytest.approx(
                PAPER_TARGETS[name].fig3_diff_line,
                abs=TOLERANCES["fig3_diff_line"],
            ), name

    def test_int_average_same_line_near_paper(self, figure3):
        """Paper: same-line averages 35.4% of SPECint references."""
        names = [n for n in SPECINT_NAMES if n in figure3.rows]
        if len(names) == 5:
            avg = figure3.average(names)["B-same-line"]
            assert avg == pytest.approx(0.354, abs=0.06)

    def test_fp_average_diff_line_near_paper(self, figure3):
        """Paper: B-diff-line averages 21.42% of SPECfp references."""
        names = [n for n in SPECFP_NAMES if n in figure3.rows]
        if len(names) == 5:
            avg = figure3.average(names)["B-diff-line"]
            assert avg == pytest.approx(0.2142, abs=0.06)

    def test_same_bank_skew(self, figure3):
        """Paper section 4: same-bank mass well above the uniform 25%."""
        for name, mapping in figure3.rows.items():
            assert mapping.same_bank_fraction() > 0.30, name

    def test_swim_and_wave5_published_values(self, figure3):
        if "swim" in figure3.rows:
            assert figure3.rows["swim"].fraction("B-diff-line") == pytest.approx(
                0.3381, abs=0.06
            )
        if "wave5" in figure3.rows:
            assert figure3.rows["wave5"].fraction("B-diff-line") == pytest.approx(
                0.2473, abs=0.06
            )


class TestBankSweep:
    """The paper's section 4 infinite-banks argument, quantified."""

    @pytest.fixture(scope="class")
    def sweep(self):
        return run_bank_sweep(
            bench_settings(benchmarks=("li", "gcc", "swim", "mgrid"))
        )

    def test_same_line_mass_is_bank_invariant(self, sweep):
        """Same line implies same bank at every bank count: no amount of
        banking removes the combinable conflicts."""
        print()
        print(render_bank_sweep(sweep))
        for name in sweep[2].rows:
            values = [
                sweep[banks].rows[name].fraction("B-same-line")
                for banks in sorted(sweep)
            ]
            assert max(values) - min(values) < 1e-9, name

    def test_diff_line_mass_shrinks_with_banks(self, sweep):
        """More banks do remove *different-line* conflicts for codes
        without pathological strides."""
        for name in ("li", "gcc"):
            dl2 = sweep[2].rows[name].fraction("B-diff-line")
            dl16 = sweep[16].rows[name].fraction("B-diff-line")
            assert dl16 < 0.5 * dl2, name

    def test_swim_aliasing_defeats_banking(self, sweep):
        """swim's power-of-two array spacing keeps most of its diff-line
        conflicts even at 16 banks — why its Table 3 Bank column barely
        moves."""
        dl2 = sweep[2].rows["swim"].fraction("B-diff-line")
        dl16 = sweep[16].rows["swim"].fraction("B-diff-line")
        assert dl16 > 0.6 * dl2
