"""E4 — regenerate Table 4 (the six MxN LBIC configurations)."""

import pytest

from conftest import once
from repro.experiments.paper_data import TABLE4_CONFIGS
from repro.experiments.table4 import run_table4
from repro.workloads.spec95 import SPECFP_NAMES, SPECINT_NAMES


@pytest.fixture(scope="module")
def table4(runner):
    return run_table4(runner)


def test_table4_regeneration(benchmark, runner):
    result = once(benchmark, lambda: run_table4(runner))
    print()
    print(result.render())
    assert set(result.rows) == set(runner.settings.benchmarks)


class TestLbicScaling:
    def test_more_banks_never_hurt(self, table4):
        for name, row in table4.rows.items():
            for n in (2, 4):
                assert row[(4, n)] >= row[(2, n)] * 0.97, name
                assert row[(8, n)] >= row[(4, n)] * 0.97, name

    def test_deeper_buffers_never_hurt(self, table4):
        for name, row in table4.rows.items():
            for m in (2, 4, 8):
                assert row[(m, 4)] >= row[(m, 2)] * 0.97, name

    def test_fp_gains_more_from_combining_depth(self, table4):
        """Paper section 6: SPECfp gains ~10% from N 2->4; SPECint's
        program semantics limit its combining gains."""
        int_names = [n for n in SPECINT_NAMES if n in table4.rows]
        fp_names = [n for n in SPECFP_NAMES if n in table4.rows]
        if not (int_names and fp_names):
            pytest.skip("need both suites")

        def n_gain(names):
            gains = []
            for m in (2, 4, 8):
                before = sum(table4.rows[n][(m, 2)] for n in names) / len(names)
                after = sum(table4.rows[n][(m, 4)] for n in names) / len(names)
                gains.append(after / before - 1)
            return sum(gains) / len(gains)

        assert n_gain(fp_names) > n_gain(int_names)

    def test_mgrid_loves_both_dimensions(self, table4):
        """mgrid has the widest Table 4 spread in the paper
        (8.54 at 2x2 to 16.58 at 8x4)."""
        if "mgrid" in table4.rows:
            row = table4.rows["mgrid"]
            assert row[(8, 4)] > 1.5 * row[(2, 2)]

    def test_all_configs_present(self, table4):
        for row in table4.rows.values():
            assert set(row) == set(TABLE4_CONFIGS)
