"""A4 — LSQ access-selection policy (the paper's section 5.2 enhancement).

The paper ships the simple *leading-request* policy and proposes
selecting the *largest group* of combinable ready accesses as future
work; this bench implements and measures that proposal.
"""

import pytest

from conftest import bench_settings, once
from repro.experiments.ablations import ablate_combining_policy

BENCHES = ("li", "gcc", "swim", "mgrid")


@pytest.fixture(scope="module")
def sweep():
    return ablate_combining_policy(bench_settings(benchmarks=BENCHES))


def test_combining_policy_regeneration(benchmark):
    settings = bench_settings(benchmarks=("swim",))
    result = once(benchmark, lambda: ablate_combining_policy(settings))
    print()
    print(result.render())


class TestPolicyShape:
    def test_largest_group_is_no_worse(self, sweep):
        print()
        print(sweep.render())
        leading, largest = sweep.average()
        assert largest >= leading * 0.95

    def test_gain_is_modest(self, sweep):
        """The paper kept leading-request because it is 'fair and simple';
        the enhancement should not be transformative."""
        leading, largest = sweep.average()
        assert largest <= leading * 1.3
