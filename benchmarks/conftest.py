"""Shared configuration for the paper-reproduction benchmark harness.

Each module regenerates one table or figure of the paper (plus the
ablations from DESIGN.md), prints it next to the paper's published
values, and asserts the paper's qualitative claims on the measured data.

Knobs (environment variables):

* ``REPRO_BENCH_INSTRUCTIONS`` — timed instructions per simulation
  (default 10000; the models converge quickly, see the convergence
  test).  Raise for smoother numbers.
* ``REPRO_BENCH_SEED`` — workload seed (default 1).

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

import os

import pytest

from repro.experiments.runner import ExperimentRunner, RunSettings

BENCH_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "10000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))


def bench_settings(**overrides) -> RunSettings:
    values = dict(
        instructions=BENCH_INSTRUCTIONS,
        seed=BENCH_SEED,
    )
    values.update(overrides)
    return RunSettings(**values)


@pytest.fixture(scope="session")
def settings() -> RunSettings:
    return bench_settings()


@pytest.fixture(scope="session")
def runner(settings) -> ExperimentRunner:
    """One memoizing runner shared by Table 3, Table 4 and the claim
    checks, so common configurations simulate once per session."""
    return ExperimentRunner(settings)


def once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
