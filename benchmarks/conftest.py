"""Shared configuration for the paper-reproduction benchmark harness.

Each module regenerates one table or figure of the paper (plus the
ablations from DESIGN.md), prints it next to the paper's published
values, and asserts the paper's qualitative claims on the measured data.

Knobs (environment variables):

* ``REPRO_BENCH_INSTRUCTIONS`` — timed instructions per simulation
  (default 10000; the models converge quickly, see the convergence
  test).  Raise for smoother numbers.
* ``REPRO_BENCH_SEED`` — workload seed (default 1).
* ``REPRO_BENCH_JOBS`` — parallel simulation workers (default 1, i.e.
  inline; results are seed-deterministic either way).

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

import os

import pytest

from repro.engine import RunSettings, SimulationEngine
from repro.experiments.runner import ExperimentRunner

BENCH_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "10000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def bench_settings(**overrides) -> RunSettings:
    values = dict(
        instructions=BENCH_INSTRUCTIONS,
        seed=BENCH_SEED,
    )
    values.update(overrides)
    return RunSettings(**values)


@pytest.fixture(scope="session")
def settings() -> RunSettings:
    return bench_settings()


@pytest.fixture(scope="session")
def engine(settings) -> SimulationEngine:
    """One memoizing engine shared by Table 3, Table 4 and the claim
    checks, so common configurations simulate once per session.  No
    persistent store: benchmark timings must measure real simulations."""
    return SimulationEngine(settings, jobs=BENCH_JOBS)


@pytest.fixture(scope="session")
def runner(engine) -> ExperimentRunner:
    """Backwards-compatible wrapper over the session engine."""
    return ExperimentRunner(engine=engine)


def once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
