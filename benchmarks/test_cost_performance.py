"""A5 — cost/performance: the die-area arguments of sections 1 and 6."""

import pytest

from conftest import bench_settings, once
from repro.common.config import LBICConfig, ReplicatedPortConfig
from repro.cost.area import area_ratio
from repro.experiments.ablations import cost_performance, render_cost_performance


@pytest.fixture(scope="module")
def points():
    settings = bench_settings(benchmarks=("li", "gcc", "swim", "mgrid"))
    return cost_performance(settings)


def test_cost_performance_regeneration(benchmark):
    settings = bench_settings(benchmarks=("li", "swim"))
    points = once(benchmark, lambda: cost_performance(settings))
    print()
    print(render_cost_performance(points))


class TestCostClaims:
    def test_paper_2x_area_claim(self):
        """Section 6: a 2-port replicated cache costs about twice the
        2x2 LBIC in die area."""
        ratio = area_ratio(
            ReplicatedPortConfig(2), LBICConfig(banks=2, buffer_ports=2)
        )
        assert ratio == pytest.approx(2.0, abs=0.4)

    def test_lbic_dominates_replication(self, points):
        """At similar or lower area, the LBIC outperforms replication —
        the cost-effectiveness headline."""
        print()
        print(render_cost_performance(points))
        by_label = {p.label: p for p in points}
        lbic = by_label["lbic-4x2"]
        repl = by_label["repl-4"]
        assert lbic.area_rbe < repl.area_rbe
        assert lbic.specfp_ipc > repl.specfp_ipc * 0.95

    def test_lbic_close_to_banked_cost(self, points):
        by_label = {p.label: p for p in points}
        assert by_label["lbic-4x4"].area_rbe < by_label["bank-4"].area_rbe * 1.2

    def test_ideal_is_most_expensive_per_port(self, points):
        by_label = {p.label: p for p in points}
        assert by_label["ideal-4"].area_rbe > by_label["lbic-4x4"].area_rbe
