"""E2 — regenerate Table 3 (ideal / replicated / banked IPC sweep)."""

import pytest

from conftest import once
from repro.experiments.paper_data import TABLE3, TABLE3_PORTS
from repro.experiments.table3 import run_table3
from repro.workloads.spec95 import SPECFP_NAMES, SPECINT_NAMES


@pytest.fixture(scope="module")
def table3(runner):
    return run_table3(runner)


def test_table3_regeneration(benchmark, runner):
    result = once(benchmark, lambda: run_table3(runner))
    print()
    print(result.render())
    assert set(result.rows) == set(runner.settings.benchmarks)


class TestSinglePortColumn:
    def test_single_port_ipcs_close_to_paper(self, table3):
        """At one port everything is bandwidth-bound, so even absolute
        IPC matches the paper closely."""
        for name, row in table3.rows.items():
            assert row["1"] == pytest.approx(TABLE3[name]["1"], rel=0.15), name


class TestIdealScaling:
    def test_monotonic_in_ports(self, table3):
        for name, row in table3.rows.items():
            values = [row["1"]] + [row[("true", p)] for p in TABLE3_PORTS]
            for a, b in zip(values, values[1:]):
                assert b >= a * 0.98, name

    def test_strong_1_to_2_scaling(self, table3):
        """Paper: ~89%/92% average improvement from 1 to 2 ideal ports."""
        for label in table3.averages:
            avg = table3.averages[label]
            assert avg[("true", 2)] / avg["1"] > 1.5

    def test_saturation_by_16_ports(self, table3):
        for label in table3.averages:
            avg = table3.averages[label]
            assert avg[("true", 16)] / avg[("true", 8)] < 1.10

    def test_mgrid_keeps_scaling_to_16(self, table3):
        """mgrid is the ILP outlier: 8->16 ideal ports still helps it in
        the paper (16.6 -> 18.6)."""
        if "mgrid" in table3.rows:
            row = table3.rows["mgrid"]
            assert row[("true", 16)] > row[("true", 4)] * 1.3


class TestReplication:
    def test_replication_never_beats_ideal(self, table3):
        for name, row in table3.rows.items():
            for ports in TABLE3_PORTS:
                assert row[("repl", ports)] <= row[("true", ports)] * 1.02

    def test_store_ratio_governs_replication_gap(self, table3):
        """compress (s/l .81) suffers; mgrid (s/l .04) is indistinguishable
        from ideal (paper section 3.1)."""
        if {"compress", "mgrid"} <= set(table3.rows):
            compress = table3.rows["compress"]
            mgrid = table3.rows["mgrid"]
            compress_ratio = compress[("repl", 16)] / compress[("true", 16)]
            mgrid_ratio = mgrid[("repl", 16)] / mgrid[("true", 16)]
            assert compress_ratio < 0.85
            assert mgrid_ratio > 0.92


class TestBanking:
    def test_bank_conflicts_hurt_swim_most(self, table3):
        """Paper: swim bank-16 reaches only ~51% of ideal-16."""
        if "swim" in table3.rows:
            row = table3.rows["swim"]
            assert row[("bank", 16)] < 0.75 * row[("true", 16)]

    def test_banking_overtakes_replication_at_width(self, table3):
        """Paper section 3.2: as ports increase, banking overtakes
        replication for store-intensive programs."""
        store_heavy = [n for n in ("compress", "gcc", "li", "perl")
                       if n in table3.rows]
        overtakes = [
            n for n in store_heavy
            if table3.rows[n][("bank", 16)] > table3.rows[n][("repl", 16)]
        ]
        assert len(overtakes) >= len(store_heavy) - 1

    def test_int_suite_average_shape(self, table3):
        """Paper Table 3 SPECint averages: bank-16 (6.20) sits between
        repl-16 (5.73) and true-16 (6.98)."""
        if "SPECint Ave." in table3.averages:
            avg = table3.averages["SPECint Ave."]
            assert avg[("repl", 16)] < avg[("bank", 16)] <= avg[("true", 16)] * 1.02
