"""A1 — LSQ depth ablation (paper section 5.2: 'performance of the
scheme depends on the depth of the LSQ')."""

import pytest

from conftest import bench_settings, once
from repro.experiments.ablations import ablate_lsq_depth

DEPTHS = (8, 32, 128, 512)


@pytest.fixture(scope="module")
def sweep():
    settings = bench_settings(benchmarks=("li", "perl", "swim", "mgrid"))
    return ablate_lsq_depth(settings, depths=DEPTHS)


def test_lsq_depth_regeneration(benchmark):
    settings = bench_settings(benchmarks=("li", "swim"))
    result = once(benchmark, lambda: ablate_lsq_depth(settings, depths=DEPTHS))
    print()
    print(result.render())


class TestLsqDepthShape:
    def test_deeper_lsq_helps(self, sweep):
        print()
        print(sweep.render())
        average = sweep.average()
        assert average[-1] > average[0] * 1.1

    def test_monotonic_on_average(self, sweep):
        average = sweep.average()
        for small, large in zip(average, average[1:]):
            assert large >= small * 0.97

    def test_saturation(self, sweep):
        """Most of the benefit arrives well before 512 entries."""
        average = sweep.average()
        assert average[2] > average[0]
        assert average[-1] / average[2] < 1.25
