"""A7/A8/A9 — structural ablations: bank porting, line size, memory
latency robustness."""

import pytest

from conftest import bench_settings, once
from repro.experiments.ablations import (
    ablate_associativity,
    ablate_bank_porting,
    ablate_line_size,
    ablate_memory_latency,
)


class TestBankPorting:
    """A7 — equal peak bandwidth (8/cycle), different structure."""

    @pytest.fixture(scope="class")
    def sweep(self):
        return ablate_bank_porting(
            bench_settings(benchmarks=("li", "swim", "mgrid"))
        )

    def test_regeneration(self, benchmark):
        settings = bench_settings(benchmarks=("swim",))
        result = once(benchmark, lambda: ablate_bank_porting(settings))
        print()
        print(result.render())

    def test_dual_ported_banks_beat_more_banks_on_conflict_codes(self, sweep):
        """swim's conflicts are same-bank: a second port per bank serves
        them; an 8th bank does not."""
        print()
        print(sweep.render())
        bank8, bank4x2, _ = sweep.ipcs["swim"]
        assert bank4x2 > bank8

    def test_lbic_competitive_with_multiported_banks(self, sweep):
        """The LBIC's single-line buffer approximates a dual-ported bank
        at a fraction of the cost (buffers vs multi-ported arrays)."""
        for name, (bank8, bank4x2, lbic) in sweep.ipcs.items():
            assert lbic >= 0.85 * bank4x2, name


class TestLineSize:
    """A8 — L1 line size under a 4x4 LBIC."""

    @pytest.fixture(scope="class")
    def sweep(self):
        return ablate_line_size(
            bench_settings(benchmarks=("li", "swim")), line_sizes=(16, 32, 64)
        )

    def test_regeneration(self, benchmark):
        settings = bench_settings(benchmarks=("li",))
        result = once(
            benchmark, lambda: ablate_line_size(settings, line_sizes=(16, 32, 64))
        )
        print()
        print(result.render())

    def test_longer_lines_help_combining(self, sweep):
        """16-byte lines (2 words) leave little to combine; 32/64-byte
        lines carry whole clusters — a real gain where bandwidth binds
        (2x2 LBIC)."""
        print()
        print(sweep.render())
        average = sweep.average()
        assert average[1] > average[0] * 1.02   # 32B beats 16B
        assert average[2] > average[0] * 1.05   # 64B beats 16B clearly


class TestMemoryLatency:
    """A9 — the who-wins ordering survives realistic memory latency."""

    @pytest.fixture(scope="class")
    def results(self):
        return ablate_memory_latency(
            bench_settings(benchmarks=("swim",)), latencies=(10, 30, 100)
        )

    def test_regeneration(self, benchmark):
        settings = bench_settings(benchmarks=("swim",))
        results = once(
            benchmark,
            lambda: ablate_memory_latency(settings, latencies=(10, 100)),
        )
        print()
        for label, row in results.items():
            print(f"  {label:10s} {row}")

    def test_ordering_is_latency_robust(self, results):
        """At every latency: {ideal, lbic} > repl > ... and lbic > bank.
        The LBIC may nose ahead of the 4-port ideal cache at long
        latencies (its 16-access peak exposes more MLP per cycle)."""
        for index in range(3):
            ideal = results["ideal-4"][index]
            repl = results["repl-4"][index]
            bank = results["bank-4"][index]
            lbic = results["lbic-4x4"][index]
            assert ideal >= lbic * 0.90
            assert lbic > bank
            assert ideal > repl

    def test_latency_hurts_latency_bound_designs(self, results):
        """The high-bandwidth designs lose IPC at 100-cycle memory; the
        banked cache is *conflict*-bound, so latency barely moves it —
        which is itself the paper's point that this is a bandwidth
        study."""
        for label in ("ideal-4", "repl-4", "lbic-4x4"):
            row = results[label]
            assert row[-1] < row[0], label
        bank = results["bank-4"]
        spread = abs(bank[-1] - bank[0]) / bank[0]
        assert spread < 0.25


class TestAssociativity:
    """A12 — the direct-mapped L1 choice is not load-bearing."""

    @pytest.fixture(scope="class")
    def sweep(self):
        return ablate_associativity(
            bench_settings(benchmarks=("li", "su2cor"))
        )

    def test_regeneration(self, benchmark):
        settings = bench_settings(benchmarks=("su2cor",))
        result = once(benchmark, lambda: ablate_associativity(settings))
        print()
        print(result.render())

    def test_associativity_changes_little(self, sweep):
        """The models' misses are compulsory/streaming, not conflict:
        2- or 4-way associativity moves IPC by only a few percent, so the
        paper's direct-mapped L1 does not drive any conclusion."""
        print()
        print(sweep.render())
        for name, row in sweep.ipcs.items():
            spread = (max(row) - min(row)) / max(row)
            assert spread < 0.10, name
