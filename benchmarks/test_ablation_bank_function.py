"""A2 — bank-selection function ablation (paper section 3.2).

The paper argues that sophisticated selection functions are unattractive
for caches because much of the conflict mass is same-line (which no bank
function can fix, but combining can).  The sweep quantifies that: hashes
help the *banked* cache on conflict-heavy FP codes, while the LBIC is
much less sensitive.
"""

import pytest

from conftest import bench_settings, once
from repro.common.config import BANK_FUNCTIONS
from repro.experiments.ablations import ablate_bank_function

BENCHES = ("li", "gcc", "swim", "mgrid")


@pytest.fixture(scope="module")
def sweeps():
    return ablate_bank_function(bench_settings(benchmarks=BENCHES))


def test_bank_function_regeneration(benchmark):
    settings = bench_settings(benchmarks=("swim",))
    banked, lbic = once(benchmark, lambda: ablate_bank_function(settings))
    print()
    print(banked.render())
    print()
    print(lbic.render())


class TestBankFunctionShape:
    def test_hashing_helps_banked_on_aliased_fp(self, sweeps):
        """swim's power-of-two array aliasing is exactly what XOR/hash
        interleaving breaks."""
        banked, _ = sweeps
        print()
        print(banked.render())
        functions = list(BANK_FUNCTIONS)
        swim = banked.ipcs["swim"]
        bit_select = swim[functions.index("bit-select")]
        best_hash = max(
            swim[functions.index("xor-fold")],
            swim[functions.index("fibonacci")],
        )
        assert best_hash > bit_select * 1.05

    def test_lbic_less_sensitive_than_banked(self, sweeps):
        """Relative spread across bank functions: smaller for the LBIC
        (combining removed the same-line share of conflicts)."""
        banked, lbic = sweeps
        print()
        print(lbic.render())

        def spread(sweep):
            values = sweep.average()
            return (max(values) - min(values)) / max(values)

        assert spread(lbic) <= spread(banked) + 0.02

    def test_int_codes_mostly_indifferent(self, sweeps):
        """For same-line-dominated integer codes, the function choice
        barely matters — the paper's point."""
        banked, _ = sweeps
        for name in ("li", "gcc"):
            values = banked.ipcs[name]
            assert (max(values) - min(values)) / max(values) < 0.25
