"""Engineering benchmarks: simulator throughput (proper multi-round
pytest-benchmark measurements, not table regenerations).

``tools/bench_speed.py`` measures the same quantities standalone and
appends them to ``BENCH_speed.json``; this module is the pytest-native
view plus the cycle-skipping speedup assertion (see
``docs/performance.md``).
"""

import dataclasses
import time

import pytest

pytest.importorskip(
    "pytest_benchmark",
    reason="speed benchmarks need the pytest-benchmark plugin",
)

from repro import (
    IdealPortConfig,
    LBICConfig,
    MainMemoryConfig,
    Processor,
    paper_machine,
)
from repro.analysis.traces import characterize
from repro.workloads import miss_heavy_mix, spec95_workload

N = 5_000


def simulate_once(name, ports, cycle_skipping=True):
    workload = spec95_workload(name)
    processor = Processor(paper_machine(ports), cycle_skipping=cycle_skipping)
    return processor.run(workload.stream(seed=1), max_instructions=N)


def miss_heavy_machine(ports):
    """The skip stress case: serial misses to 200-cycle memory."""
    return dataclasses.replace(
        paper_machine(ports), memory=MainMemoryConfig(access_latency=200)
    )


def simulate_miss_heavy(ports, cycle_skipping=True):
    stream = miss_heavy_mix().stream(seed=1)
    processor = Processor(miss_heavy_machine(ports), cycle_skipping=cycle_skipping)
    return processor.run(stream, max_instructions=N)


class TestSimulatorThroughput:
    def test_ideal_port_machine(self, benchmark):
        result = benchmark.pedantic(
            lambda: simulate_once("gcc", IdealPortConfig(4)),
            rounds=3, iterations=1,
        )
        assert result.instructions == N

    def test_lbic_machine(self, benchmark):
        result = benchmark.pedantic(
            lambda: simulate_once("swim", LBICConfig(banks=4, buffer_ports=4)),
            rounds=3, iterations=1,
        )
        assert result.instructions == N

    def test_wide_lbic_machine(self, benchmark):
        # the widest paper configuration (8 banks x 4 buffer ports)
        result = benchmark.pedantic(
            lambda: simulate_once("swim", LBICConfig(banks=8, buffer_ports=4)),
            rounds=3, iterations=1,
        )
        assert result.instructions == N

    def test_miss_heavy_machine(self, benchmark):
        # idle-dominated: most cycles are jumped by event-horizon skipping
        result = benchmark.pedantic(
            lambda: simulate_miss_heavy(IdealPortConfig(4)),
            rounds=3, iterations=1,
        )
        assert result.instructions == N
        assert result.cycles > 10 * N  # genuinely miss-bound


class TestCycleSkippingSpeedup:
    def test_miss_heavy_speedup_at_least_2x(self):
        """On an idle-dominated run, event-horizon skipping must be at
        least 2x faster than per-cycle stepping (measured ~8-10x; the
        margin absorbs CI noise), with bit-identical results."""

        def timed(cycle_skipping):
            best = float("inf")
            result = None
            for _ in range(3):
                start = time.perf_counter()
                result = simulate_miss_heavy(
                    IdealPortConfig(4), cycle_skipping=cycle_skipping
                )
                best = min(best, time.perf_counter() - start)
            return best, result

        skip_time, skip_result = timed(True)
        step_time, step_result = timed(False)
        assert skip_result.to_dict() == step_result.to_dict()
        assert step_time / skip_time >= 2.0, (
            f"cycle skipping only {step_time / skip_time:.2f}x faster "
            f"({skip_time:.3f}s vs {step_time:.3f}s)"
        )


class TestGenerationThroughput:
    def test_workload_generation(self, benchmark):
        def generate():
            workload = spec95_workload("swim")
            return sum(1 for _ in workload.stream(seed=1, max_instructions=20_000))

        assert benchmark.pedantic(generate, rounds=3, iterations=1) == 20_000

    def test_functional_characterization(self, benchmark):
        def run():
            workload = spec95_workload("li")
            return characterize(
                workload.stream(seed=1, max_instructions=20_000)
            )

        stats = benchmark.pedantic(run, rounds=3, iterations=1)
        assert stats.instructions == 20_000
