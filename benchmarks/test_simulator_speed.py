"""Engineering benchmarks: simulator throughput (proper multi-round
pytest-benchmark measurements, not table regenerations)."""

import pytest

from repro import (
    IdealPortConfig,
    LBICConfig,
    Processor,
    paper_machine,
)
from repro.analysis.traces import characterize
from repro.workloads import spec95_workload

N = 5_000


def simulate_once(name, ports):
    workload = spec95_workload(name)
    processor = Processor(paper_machine(ports))
    return processor.run(workload.stream(seed=1), max_instructions=N)


class TestSimulatorThroughput:
    def test_ideal_port_machine(self, benchmark):
        result = benchmark.pedantic(
            lambda: simulate_once("gcc", IdealPortConfig(4)),
            rounds=3, iterations=1,
        )
        assert result.instructions == N

    def test_lbic_machine(self, benchmark):
        result = benchmark.pedantic(
            lambda: simulate_once("swim", LBICConfig(banks=4, buffer_ports=4)),
            rounds=3, iterations=1,
        )
        assert result.instructions == N


class TestGenerationThroughput:
    def test_workload_generation(self, benchmark):
        def generate():
            workload = spec95_workload("swim")
            return sum(1 for _ in workload.stream(seed=1, max_instructions=20_000))

        assert benchmark.pedantic(generate, rounds=3, iterations=1) == 20_000

    def test_functional_characterization(self, benchmark):
        def run():
            workload = spec95_workload("li")
            return characterize(
                workload.stream(seed=1, max_instructions=20_000)
            )

        stats = benchmark.pedantic(run, rounds=3, iterations=1)
        assert stats.instructions == 20_000
