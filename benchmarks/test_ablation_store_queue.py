"""A3 — LBIC per-bank store-queue depth ablation.

The paper assumes a store queue "that can hold up to some number of
words" without sizing it; this sweep sizes it.
"""

import pytest

from conftest import bench_settings, once
from repro.experiments.ablations import ablate_store_queue

DEPTHS = (1, 2, 4, 8, 16)
#: store-heavy programs stress the queue; mgrid is the no-store control
BENCHES = ("compress", "li", "perl", "mgrid")


@pytest.fixture(scope="module")
def sweep():
    return ablate_store_queue(bench_settings(benchmarks=BENCHES), depths=DEPTHS)


def test_store_queue_regeneration(benchmark):
    settings = bench_settings(benchmarks=("compress",))
    result = once(benchmark, lambda: ablate_store_queue(settings, depths=DEPTHS))
    print()
    print(result.render())


class TestStoreQueueShape:
    def test_deeper_queues_help_store_heavy_codes(self, sweep):
        print()
        print(sweep.render())
        for name in ("compress", "li", "perl"):
            row = sweep.ipcs[name]
            assert row[-1] >= row[0]

    def test_mgrid_indifferent(self, sweep):
        """With 0.04 stores per load, mgrid cannot care."""
        row = sweep.ipcs["mgrid"]
        assert (max(row) - min(row)) / max(row) < 0.10

    def test_default_depth_is_in_the_flat_region(self, sweep):
        """Depth 8 (the library default) captures nearly all the benefit."""
        average = sweep.average()
        depth8 = average[DEPTHS.index(8)]
        depth16 = average[DEPTHS.index(16)]
        assert depth16 / depth8 < 1.08
