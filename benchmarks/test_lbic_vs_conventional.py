"""E5 — the paper's section 6 cross-comparisons and the C1-C6 claim set."""

import pytest

from conftest import once
from repro.experiments.comparisons import check_claims
from repro.experiments.figure3 import run_figure3
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4


@pytest.fixture(scope="module")
def everything(runner):
    table3 = run_table3(runner)
    table4 = run_table4(runner)
    figure3 = run_figure3(runner.settings)
    return table3, table4, figure3


def test_claim_checklist(benchmark, everything):
    table3, table4, figure3 = everything
    report = once(benchmark, lambda: check_claims(table3, table4, figure3))
    print()
    print(report.render())
    assert report.all_passed, [check.claim_id for check in report.failures()]


class TestSection6Comparisons:
    def test_2x2_lbic_vs_2port_ideal(self, everything):
        """Paper: 'With the exception of compress, the 2x2 LBIC
        outperforms the 2-port ideal cache.'"""
        table3, table4, _ = everything
        winners = [
            name for name in table4.rows
            if table4.ipc(name, 2, 2) >= 0.95 * table3.ipc(name, "true", 2)
        ]
        assert len(winners) >= 0.7 * len(table4.rows)

    def test_4x4_lbic_vs_8_bank(self, everything):
        """Paper: the 4x4 LBIC beats the 8-bank cache on both suites."""
        table3, table4, _ = everything
        for label in table3.averages:
            suite_names = [
                n for n in table4.rows
                if (n in ("compress", "gcc", "go", "li", "perl"))
                == (label == "SPECint Ave.")
            ]
            if not suite_names:
                continue
            lbic = sum(table4.ipc(n, 4, 4) for n in suite_names) / len(suite_names)
            bank8 = sum(
                table3.ipc(n, "bank", 8) for n in suite_names
            ) / len(suite_names)
            assert lbic >= bank8 * 0.98, label

    def test_4x4_lbic_vs_4port_ideal_on_int(self, everything):
        """Paper: 4x4 LBIC achieves ~90% of 4-port ideal on SPECint."""
        table3, table4, _ = everything
        names = [n for n in table4.rows
                 if n in ("compress", "gcc", "go", "li", "perl")]
        if not names:
            pytest.skip("no SPECint benchmarks in this run")
        lbic = sum(table4.ipc(n, 4, 4) for n in names) / len(names)
        ideal = sum(table3.ipc(n, "true", 4) for n in names) / len(names)
        assert lbic >= 0.80 * ideal

    def test_mgrid_4port_ideal_loses_to_4x4_lbic(self, everything):
        """Paper: the 4-port ideal cache achieves only 64% of the 4x4
        LBIC's performance on mgrid."""
        table3, table4, _ = everything
        if "mgrid" not in table4.rows:
            pytest.skip("mgrid not in this run")
        assert table3.ipc("mgrid", "true", 4) < table4.ipc("mgrid", 4, 4)

    def test_lbic_always_at_least_banked(self, everything):
        """An MxN LBIC should never lose to the M-bank cache it extends."""
        table3, table4, _ = everything
        for name in table4.rows:
            for banks in (2, 4, 8):
                if ("bank", banks) in table3.rows[name]:
                    assert table4.ipc(name, banks, 2) >= table3.ipc(
                        name, "bank", banks
                    ) * 0.95, (name, banks)
