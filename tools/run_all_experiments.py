#!/usr/bin/env python
"""Regenerate every paper artifact and the claim checklist in one pass.

All timing simulations flow through one shared
:class:`~repro.engine.SimulationEngine`, so the whole pass fans out
across ``--jobs`` worker processes and persists results to the
``results/cache/`` store — a warm second pass re-simulates nothing, and
the closing summary proves it (hit/miss counters + wall clock).
"""
import argparse
import sys
import time

from repro.engine import ResultStore, RunSettings, SimulationEngine
from repro.experiments import (
    check_claims,
    run_figure3,
    run_table2,
    run_table3,
    run_table4,
)
from repro.experiments.ablations import (
    ablate_bank_function,
    ablate_bank_porting,
    ablate_combining_policy,
    ablate_crossbar_latency,
    ablate_fill_port,
    ablate_interleaving,
    ablate_line_size,
    ablate_lsq_depth,
    ablate_memory_latency,
    ablate_store_queue,
    cost_performance,
    render_cost_performance,
)


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "instructions", nargs="?", type=int, default=20_000,
        help="timed instructions per table configuration (default 20000)",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="parallel simulation workers (default: all cores)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the persistent result cache",
    )
    parser.add_argument(
        "--no-amortize", action="store_true",
        help="disable sweep-level amortization (shared materialized "
             "traces and warm-up checkpoints); every unit then "
             "regenerates its stream and re-walks its warm-up",
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    n = args.instructions
    settings = RunSettings(instructions=n)
    store = None if args.no_cache else ResultStore()
    engine = SimulationEngine(
        settings, jobs=args.jobs, store=store, amortize=not args.no_amortize
    )
    t0 = time.time()

    print(run_table2(settings).render(), flush=True)
    print()
    figure3 = run_figure3(settings)
    print(figure3.render(), flush=True)
    print()
    table3 = run_table3(engine=engine)
    print(table3.render(), flush=True)
    print()
    table4 = run_table4(engine=engine)
    print(table4.render(), flush=True)
    print()
    report = check_claims(table3, table4, figure3)
    print(report.render(), flush=True)
    print()

    small = RunSettings(instructions=max(4000, n // 4))
    print(ablate_lsq_depth(small, engine=engine).render(), flush=True)
    print()
    banked, lbic = ablate_bank_function(small, engine=engine)
    print(banked.render())
    print()
    print(lbic.render(), flush=True)
    print()
    print(ablate_store_queue(small, engine=engine).render(), flush=True)
    print()
    print(ablate_combining_policy(small, engine=engine).render(), flush=True)
    print()
    print(render_cost_performance(cost_performance(small, engine=engine)),
          flush=True)
    print()
    print(ablate_interleaving(small, engine=engine).render(), flush=True)
    print()
    print(ablate_bank_porting(small, engine=engine).render(), flush=True)
    print()
    tiny = RunSettings(
        instructions=max(3000, n // 6),
        benchmarks=("li", "gcc", "swim", "mgrid"),
    )
    print(ablate_line_size(tiny, engine=engine).render(), flush=True)
    print()
    latencies = (10, 30, 100)
    results = ablate_memory_latency(tiny, latencies=latencies, engine=engine)
    print("Ablation A9: swim IPC vs main-memory latency")
    for label, row in results.items():
        print(f"  {label:10s} " + " ".join(f"{v:6.2f}" for v in row))
    print()
    banked_xb, lbic_xb = ablate_crossbar_latency(tiny, engine=engine)
    print(banked_xb.render())
    print()
    print(lbic_xb.render(), flush=True)
    print()
    print(ablate_fill_port(tiny, engine=engine).render(), flush=True)
    print()
    print(engine.render_summary())
    print(f"total wall time: {time.time() - t0:.0f}s")
    return 0 if report.all_passed else 1


if __name__ == "__main__":
    sys.exit(main())
