#!/usr/bin/env python
"""Regenerate every paper artifact and the claim checklist in one pass."""
import sys
import time

from repro.experiments import (
    ExperimentRunner,
    RunSettings,
    check_claims,
    run_figure3,
    run_table2,
    run_table3,
    run_table4,
)
from repro.experiments.ablations import (
    ablate_bank_function,
    ablate_bank_porting,
    ablate_combining_policy,
    ablate_crossbar_latency,
    ablate_fill_port,
    ablate_interleaving,
    ablate_line_size,
    ablate_lsq_depth,
    ablate_memory_latency,
    ablate_store_queue,
    cost_performance,
    render_cost_performance,
)


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    settings = RunSettings(instructions=n)
    runner = ExperimentRunner(settings)
    t0 = time.time()

    print(run_table2(settings).render(), flush=True)
    print()
    figure3 = run_figure3(settings)
    print(figure3.render(), flush=True)
    print()
    table3 = run_table3(runner)
    print(table3.render(), flush=True)
    print()
    table4 = run_table4(runner)
    print(table4.render(), flush=True)
    print()
    report = check_claims(table3, table4, figure3)
    print(report.render(), flush=True)
    print()

    small = RunSettings(instructions=max(4000, n // 4))
    print(ablate_lsq_depth(small).render(), flush=True)
    print()
    banked, lbic = ablate_bank_function(small)
    print(banked.render())
    print()
    print(lbic.render(), flush=True)
    print()
    print(ablate_store_queue(small).render(), flush=True)
    print()
    print(ablate_combining_policy(small).render(), flush=True)
    print()
    print(render_cost_performance(cost_performance(small)), flush=True)
    print()
    print(ablate_interleaving(small).render(), flush=True)
    print()
    print(ablate_bank_porting(small).render(), flush=True)
    print()
    tiny = RunSettings(
        instructions=max(3000, n // 6),
        benchmarks=("li", "gcc", "swim", "mgrid"),
    )
    print(ablate_line_size(tiny).render(), flush=True)
    print()
    latencies = (10, 30, 100)
    results = ablate_memory_latency(tiny, latencies=latencies)
    print("Ablation A9: swim IPC vs main-memory latency")
    for label, row in results.items():
        print(f"  {label:10s} " + " ".join(f"{v:6.2f}" for v in row))
    print()
    banked_xb, lbic_xb = ablate_crossbar_latency(tiny)
    print(banked_xb.render())
    print()
    print(lbic_xb.render(), flush=True)
    print()
    print(ablate_fill_port(tiny).render(), flush=True)
    print()
    print(f"total wall time: {time.time() - t0:.0f}s")
    return 0 if report.all_passed else 1


if __name__ == "__main__":
    sys.exit(main())
