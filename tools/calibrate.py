#!/usr/bin/env python
"""Calibration report: measured vs paper targets for every SPEC95 model.

Run while tuning kernel weights/parameters in repro.workloads.spec95.
"""

import argparse
import sys

from repro.common.tables import Table
from repro.workloads.spec95 import ALL_NAMES, PAPER_TARGETS, spec95_workload
from repro.analysis.traces import characterize


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("-n", type=int, default=120_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("names", nargs="*", default=list(ALL_NAMES))
    args = parser.parse_args()

    table = Table(
        [
            "prog",
            "mem%", "tgt",
            "s/l", "tgt",
            "miss", "tgt",
            "sl", "tgt",
            "dl", "tgt",
        ],
        precision=3,
    )
    for name in args.names:
        t = PAPER_TARGETS[name]
        wl = spec95_workload(name)
        stats = characterize(
            wl.stream(seed=args.seed, max_instructions=args.n),
            skip_warmup=args.n // 10,
        )
        m = stats.mapping
        table.add_row([
            name,
            stats.mem_fraction, t.mem_fraction,
            stats.store_to_load_ratio, t.store_to_load,
            stats.miss_rate, t.miss_rate,
            m.fraction("B-same-line"), t.fig3_same_line,
            m.fraction("B-diff-line"), t.fig3_diff_line,
        ])
    print(table.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
