#!/usr/bin/env python
"""Regenerate the markdown reproduction report.

Usage: python tools/write_report.py [out.md] [instructions]
"""

import sys

from repro.engine import ResultStore, RunSettings, SimulationEngine
from repro.experiments.ablations import ablate_interleaving, ablate_lsq_depth
from repro.experiments.report import build_report


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "results/report.md"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000
    settings = RunSettings(instructions=instructions)
    engine = SimulationEngine(settings, jobs=None, store=ResultStore())
    sweep_settings = RunSettings(
        instructions=max(2000, instructions // 2),
        benchmarks=("li", "gcc", "swim", "mgrid"),
    )
    sweeps = [
        ablate_lsq_depth(sweep_settings, depths=(8, 32, 128, 512), engine=engine),
        ablate_interleaving(sweep_settings, engine=engine),
    ]
    report = build_report(engine=engine, sweeps=sweeps)
    with open(out_path, "w") as fh:
        fh.write(report.to_markdown())
    print(f"wrote {out_path}")
    print(engine.render_summary())
    return 0 if report.claims.all_passed else 1


if __name__ == "__main__":
    sys.exit(main())
