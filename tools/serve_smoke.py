#!/usr/bin/env python
"""Daemon smoke test: boot ``repro-lbic serve``, prove the cache paths.

The CI gate for the service layer, runnable locally too::

    PYTHONPATH=src python tools/serve_smoke.py

It drives the *installed* daemon over real HTTP, twice:

1. a fresh daemon over an empty cache simulates a quick unit
   (``source == "simulated"``), then answers the identical request from
   its in-process memo (``source == "memory"``) with the bit-identical
   result — no second simulation;
2. a **restarted** daemon over the same cache directory answers the
   same request straight from the persistent store
   (``source == "store"``) — its pool never runs anything.

Exits non-zero with a diagnostic if any path misbehaves.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

QUICK_UNIT = {
    "benchmark": "li",
    "ports": "lbic:4x4",
    "instructions": 2000,
    "warmup_instructions": 1000,
}

BOOT_TIMEOUT = 60.0


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def request(port: int, method: str, path: str, body=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method
    )
    with urllib.request.urlopen(req, timeout=120) as response:
        return json.loads(response.read().decode("utf-8"))


def wait_healthy(port: int, daemon: subprocess.Popen) -> dict:
    deadline = time.time() + BOOT_TIMEOUT
    while time.time() < deadline:
        if daemon.poll() is not None:
            sys.exit(f"FAIL: daemon exited early with code {daemon.returncode}")
        try:
            return request(port, "GET", "/healthz")
        except (urllib.error.URLError, ConnectionError, OSError):
            time.sleep(0.2)
    sys.exit(f"FAIL: daemon not healthy within {BOOT_TIMEOUT}s")


def start_daemon(port: int, cache_dir: str) -> subprocess.Popen:
    env = dict(os.environ, REPRO_CACHE_DIR=cache_dir)
    if shutil.which("repro-lbic"):
        command = ["repro-lbic"]
    else:  # uninstalled checkout: run the CLI module from src/
        command = [sys.executable, "-m", "repro.cli"]
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    command += ["serve", "--port", str(port), "--jobs", "2"]
    return subprocess.Popen(command, env=env)


def stop_daemon(daemon: subprocess.Popen) -> None:
    daemon.send_signal(signal.SIGINT)
    try:
        daemon.wait(timeout=30)
    except subprocess.TimeoutExpired:
        daemon.kill()
        daemon.wait()


def expect(condition: bool, message: str) -> None:
    if not condition:
        sys.exit(f"FAIL: {message}")


def main() -> int:
    cache_dir = tempfile.mkdtemp(prefix="serve-smoke-cache-")
    port = free_port()

    daemon = start_daemon(port, cache_dir)
    try:
        health = wait_healthy(port, daemon)
        expect(health["simulations"] == 0, f"fresh daemon not cold: {health}")

        first = request(port, "POST", "/v1/simulate", QUICK_UNIT)
        expect(first["state"] == "done", f"first request failed: {first}")
        unit = first["units"][0]
        expect(
            unit["source"] == "simulated",
            f"cold unit should simulate, got {unit['source']!r}",
        )
        print(f"simulated {unit['label']}: ipc={unit['ipc']:.3f}")

        second = request(port, "POST", "/v1/simulate", QUICK_UNIT)
        repeat = second["units"][0]
        expect(
            repeat["source"] == "memory",
            f"identical repeat should hit the memo, got {repeat['source']!r}",
        )
        expect(
            repeat["result"] == unit["result"],
            "memo hit returned a different result",
        )
        health = request(port, "GET", "/healthz")
        expect(
            health["simulations"] == 1,
            f"repeat request re-simulated: {health['simulations']} runs",
        )
        print("identical repeat: answered from memory, no re-simulation")
    finally:
        stop_daemon(daemon)

    # A restarted daemon must answer the same request from the store.
    daemon = start_daemon(port, cache_dir)
    try:
        wait_healthy(port, daemon)
        third = request(port, "POST", "/v1/simulate", QUICK_UNIT)
        stored = third["units"][0]
        expect(
            stored["source"] == "store",
            f"restarted daemon should hit the store, got {stored['source']!r}",
        )
        expect(
            stored["result"] == unit["result"],
            "store hit returned a different result",
        )
        health = request(port, "GET", "/healthz")
        expect(
            health["simulations"] == 0,
            f"store hit ran the pool: {health['simulations']} runs",
        )
        print("restarted daemon: answered from store, pool untouched")
    finally:
        stop_daemon(daemon)

    print("serve smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
