#!/usr/bin/env python
"""Daemon smoke test: boot ``repro-lbic serve``, prove the cache paths.

The CI gate for the service layer, runnable locally too::

    PYTHONPATH=src python tools/serve_smoke.py

It drives the *installed* daemon over real HTTP, twice:

1. a fresh daemon over an empty cache simulates a quick unit
   (``source == "simulated"``), then answers the identical request from
   its in-process memo (``source == "memory"``) with the bit-identical
   result — no second simulation;
2. a **restarted** daemon over the same cache directory answers the
   same request straight from the persistent store
   (``source == "store"``) — its pool never runs anything;
3. a daemon started with ``--trace-spans`` serves one cold request,
   and ``repro-lbic spans export`` then yields Chrome trace-event JSON
   with at least one complete span for every engine phase (plus the
   queue wait, the dedup decision, and the backend busy loop).

Exits non-zero with a diagnostic if any path misbehaves.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

QUICK_UNIT = {
    "benchmark": "li",
    "ports": "lbic:4x4",
    "instructions": 2000,
    "warmup_instructions": 1000,
}

BOOT_TIMEOUT = 60.0


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def request(port: int, method: str, path: str, body=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method
    )
    with urllib.request.urlopen(req, timeout=120) as response:
        return json.loads(response.read().decode("utf-8"))


def wait_healthy(port: int, daemon: subprocess.Popen) -> dict:
    deadline = time.time() + BOOT_TIMEOUT
    while time.time() < deadline:
        if daemon.poll() is not None:
            sys.exit(f"FAIL: daemon exited early with code {daemon.returncode}")
        try:
            return request(port, "GET", "/healthz")
        except (urllib.error.URLError, ConnectionError, OSError):
            time.sleep(0.2)
    sys.exit(f"FAIL: daemon not healthy within {BOOT_TIMEOUT}s")


def cli_command(cache_dir: str):
    """The installed CLI (or the src/ checkout) plus its environment."""
    env = dict(os.environ, REPRO_CACHE_DIR=cache_dir)
    if shutil.which("repro-lbic"):
        command = ["repro-lbic"]
    else:  # uninstalled checkout: run the CLI module from src/
        command = [sys.executable, "-m", "repro.cli"]
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    return command, env


def start_daemon(port: int, cache_dir: str, *extra: str) -> subprocess.Popen:
    command, env = cli_command(cache_dir)
    command += ["serve", "--port", str(port), "--jobs", "2", *extra]
    return subprocess.Popen(command, env=env)


def stop_daemon(daemon: subprocess.Popen) -> None:
    daemon.send_signal(signal.SIGINT)
    try:
        daemon.wait(timeout=30)
    except subprocess.TimeoutExpired:
        daemon.kill()
        daemon.wait()


def expect(condition: bool, message: str) -> None:
    if not condition:
        sys.exit(f"FAIL: {message}")


def main() -> int:
    cache_dir = tempfile.mkdtemp(prefix="serve-smoke-cache-")
    port = free_port()

    daemon = start_daemon(port, cache_dir)
    try:
        health = wait_healthy(port, daemon)
        expect(health["simulations"] == 0, f"fresh daemon not cold: {health}")

        first = request(port, "POST", "/v1/simulate", QUICK_UNIT)
        expect(first["state"] == "done", f"first request failed: {first}")
        unit = first["units"][0]
        expect(
            unit["source"] == "simulated",
            f"cold unit should simulate, got {unit['source']!r}",
        )
        print(f"simulated {unit['label']}: ipc={unit['ipc']:.3f}")

        second = request(port, "POST", "/v1/simulate", QUICK_UNIT)
        repeat = second["units"][0]
        expect(
            repeat["source"] == "memory",
            f"identical repeat should hit the memo, got {repeat['source']!r}",
        )
        expect(
            repeat["result"] == unit["result"],
            "memo hit returned a different result",
        )
        health = request(port, "GET", "/healthz")
        expect(
            health["simulations"] == 1,
            f"repeat request re-simulated: {health['simulations']} runs",
        )
        print("identical repeat: answered from memory, no re-simulation")
    finally:
        stop_daemon(daemon)

    # A restarted daemon must answer the same request from the store.
    daemon = start_daemon(port, cache_dir)
    try:
        wait_healthy(port, daemon)
        third = request(port, "POST", "/v1/simulate", QUICK_UNIT)
        stored = third["units"][0]
        expect(
            stored["source"] == "store",
            f"restarted daemon should hit the store, got {stored['source']!r}",
        )
        expect(
            stored["result"] == unit["result"],
            "store hit returned a different result",
        )
        health = request(port, "GET", "/healthz")
        expect(
            health["simulations"] == 0,
            f"store hit ran the pool: {health['simulations']} runs",
        )
        print("restarted daemon: answered from store, pool untouched")
    finally:
        stop_daemon(daemon)

    trace_smoke()

    print("serve smoke: PASS")
    return 0


#: span names one cold traced request must produce, at least once each.
EXPECTED_SPANS = (
    "request", "job", "dedup", "unit", "queue_wait", "execute",
    "materialize", "warmup", "simulate", "busy_loop", "store",
)


def trace_smoke() -> None:
    """One traced request end to end: daemon with ``--trace-spans``,
    then ``spans export`` must emit parseable Chrome trace-event JSON
    covering every engine phase of the request."""
    cache_dir = tempfile.mkdtemp(prefix="serve-smoke-trace-")
    port = free_port()
    daemon = start_daemon(port, cache_dir, "--trace-spans")
    try:
        wait_healthy(port, daemon)
        traced = request(port, "POST", "/v1/simulate", QUICK_UNIT)
        expect(traced["state"] == "done", f"traced request failed: {traced}")
        expect(
            bool(traced.get("trace")),
            "traced response carries no trace ID",
        )
    finally:
        stop_daemon(daemon)

    export = os.path.join(cache_dir, "chrome-trace.json")
    command, env = cli_command(cache_dir)
    exported = subprocess.run(
        command + ["spans", "export", "--check", "-o", export],
        env=env, capture_output=True, text=True, timeout=120,
    )
    expect(
        exported.returncode == 0,
        f"spans export failed: {exported.stdout}{exported.stderr}",
    )
    with open(export, encoding="utf-8") as handle:
        payload = json.load(handle)  # must parse as JSON
    complete = [
        event for event in payload.get("traceEvents", [])
        if event.get("ph") == "X"
    ]
    by_name = {}
    for event in complete:
        by_name.setdefault(event["name"], []).append(event)
    for name in EXPECTED_SPANS:
        spans = [e for e in by_name.get(name, []) if e.get("dur", 0) >= 0]
        expect(
            len(spans) >= 1,
            f"exported trace has no complete {name!r} span "
            f"(got {sorted(by_name)})",
        )
    # the busy loop must sit on a trace rooted by an HTTP request span
    # (healthz polls produce request spans too, so match by trace ID)
    simulate_trace = by_name["busy_loop"][0]["args"]["trace"]
    request_traces = {e["args"]["trace"] for e in by_name["request"]}
    expect(
        simulate_trace in request_traces,
        "busy loop's trace has no HTTP request root span",
    )
    print(
        f"traced request: {len(complete)} spans exported, "
        f"all engine phases covered"
    )


if __name__ == "__main__":
    sys.exit(main())
