#!/usr/bin/env python
"""Simulator speed benchmark: instructions/second per (workload x ports).

Runs a fixed grid of simulations, measures wall-clock throughput, and
*appends* one run record to ``BENCH_speed.json`` (a JSON list — the file
is a growing history, so speed changes are visible across commits).

Usage::

    PYTHONPATH=src python tools/bench_speed.py              # full grid
    PYTHONPATH=src python tools/bench_speed.py --quick      # CI smoke subset
    PYTHONPATH=src python tools/bench_speed.py --quick --check-regression
    PYTHONPATH=src python tools/bench_speed.py --sweep      # end-to-end sweep
    PYTHONPATH=src python tools/bench_speed.py --pack replacement-policies --quick

``--sweep`` measures one full port-model sweep (every workload x every
port model, cold engine, no persistent cache) twice — amortization off,
then on — and records the wall time of each; this is the number that
tracks what a Table 3 regeneration actually costs.

``--check-regression`` compares this run against the most recent
*comparable* record already in the file (same quick flag, instruction
count, backend, and cycle-skipping setting) and exits non-zero if any
shared case got more than ``--threshold`` (default 30%) slower — the CI
speed-smoke gate.  ``--backend array`` runs the grid on the flat-array
kernel and ``--backend jit`` on the numba-compiled kernel (results are
bit-identical to the object backend; records gate only against other
records of the same backend).  Grid cases run one *untimed* warm-up
pass before the timed rounds — absorbing JIT compilation and allocator
caches — recorded as ``"warmed_up": true`` in the run record.
``--no-skip`` disables event-horizon cycle skipping to measure
the per-cycle baseline (results are bit-identical either way; only the
wall-clock differs).

The grid includes ``miss_heavy`` — serial pointer chasing over an
8 MB region with 200-cycle memory — because that idle-dominated pattern
is where cycle skipping matters most; see ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.common.config import (  # noqa: E402
    BankedPortConfig,
    IdealPortConfig,
    LBICConfig,
    MachineConfig,
    MainMemoryConfig,
    ReplicatedPortConfig,
    paper_machine,
)
from repro.core.processor import Processor  # noqa: E402
from repro.engine import (  # noqa: E402
    RunSettings,
    SimulationEngine,
    clear_registries,
)
from repro.workloads import ALL_NAMES, miss_heavy_mix, spec95_workload  # noqa: E402

PORT_MODELS = {
    "ideal:1": IdealPortConfig(1),
    "ideal:4": IdealPortConfig(4),
    "repl:2": ReplicatedPortConfig(2),
    "bank:4": BankedPortConfig(banks=4),
    "lbic:2x2": LBICConfig(banks=2, buffer_ports=2),
    "lbic:4x4": LBICConfig(banks=4, buffer_ports=4),
    "lbic:8x4": LBICConfig(banks=8, buffer_ports=4),
}

#: miss_heavy runs against slow memory so idle spans dominate
MISS_HEAVY_MEMORY = MainMemoryConfig(access_latency=200)

FULL_WORKLOADS = ["gcc", "swim", "li", "miss_heavy"]
#: the quick set covers the busy configurations the array backend is
#: built for (gcc/swim at 4 ports, both ideal and LBIC 4x4) plus the
#: idle-dominated miss_heavy pattern where cycle skipping matters most.
QUICK_CASES = [
    ("gcc", "ideal:4"),
    ("swim", "ideal:4"),
    ("gcc", "lbic:4x4"),
    ("swim", "lbic:4x4"),
    ("miss_heavy", "ideal:4"),
]

#: --sweep workload sets: the full Table-3 suite, or a quick subset
SWEEP_WORKLOADS = list(ALL_NAMES)
SWEEP_QUICK_WORKLOADS = ["gcc", "swim", "li"]


def make_stream(workload: str, instructions: int, seed: int) -> list:
    if workload == "miss_heavy":
        mix = miss_heavy_mix()
    else:
        mix = spec95_workload(workload)
    return list(mix.stream(seed=seed, max_instructions=instructions))


def make_config(workload: str, ports: str) -> MachineConfig:
    config = paper_machine(PORT_MODELS[ports])
    if workload == "miss_heavy":
        config = replace(config, memory=MISS_HEAVY_MEMORY)
    return config


def bench_case(
    workload: str,
    ports: str,
    instructions: int,
    seed: int,
    rounds: int,
    cycle_skipping: bool,
    metrics: bool = False,
    backend: str = "object",
) -> Dict[str, object]:
    from repro.common.registry import mechanism

    processor_cls = mechanism("backend", backend)
    stream = make_stream(workload, instructions, seed)
    source = None
    if getattr(processor_cls, "CONSUMES_COLUMNS", False):
        # Column conversion happens outside the timed region, the same
        # way the engine's amortized sweeps share one conversion.
        from repro.core.flat import TraceColumns

        source = TraceColumns.from_instructions(stream)
    config = make_config(workload, ports)
    # One untimed warm-up run before the timed rounds: it absorbs JIT
    # compilation (the jit backend's first call), allocator and branch
    # caches, so the timed rounds measure steady state.  Records carry
    # "warmed_up": true so they only gate against other warmed records.
    warm = processor_cls(config, cycle_skipping=cycle_skipping)
    warm.run(
        source if source is not None else iter(stream),
        max_instructions=instructions,
    )
    best = 0.0
    cycles = skipped = 0
    for _ in range(rounds):
        observer = None
        if metrics:
            from repro.obs import Observer

            observer = Observer.with_metrics()
        processor = processor_cls(
            config, cycle_skipping=cycle_skipping, observer=observer
        )
        replay = source if source is not None else iter(stream)
        start = time.perf_counter()
        result = processor.run(replay, max_instructions=instructions)
        elapsed = time.perf_counter() - start
        best = max(best, result.instructions / elapsed)
        cycles = result.cycles
        skipped = processor.skipped_cycles
    return {
        "workload": workload,
        "ports": ports,
        "backend": backend,
        "instr_per_sec": round(best, 1),
        "cycles": cycles,
        "skipped_cycles": skipped,
    }


def bench_sweep(
    workloads: List[str],
    instructions: int,
    warmup: int,
    seed: int,
    jobs: int,
    backend: str = "object",
) -> List[Dict[str, object]]:
    """Wall time for one full port-model sweep, amortized vs fresh.

    Every workload runs against every port model through a cold
    :class:`SimulationEngine` (no persistent store, registries cleared),
    so the measurement is end-to-end sweep cost: stream generation,
    warm-up, and timed simulation.  ``instr_per_sec`` counts *timed*
    instructions so the two modes gate against each other and against
    history through the same regression check as the per-case grid.
    """
    settings = RunSettings(
        instructions=instructions,
        warmup_instructions=warmup,
        seed=seed,
        benchmarks=tuple(workloads),
        backend=backend,
    )
    total_instructions = instructions * len(workloads) * len(PORT_MODELS)
    cases = []
    for mode, amortize in (("fresh", False), ("amortized", True)):
        clear_registries()
        engine = SimulationEngine(
            settings, jobs=jobs, store=None, amortize=amortize
        )
        units = [
            engine.unit(workload, ports=config)
            for workload in workloads
            for config in PORT_MODELS.values()
        ]
        start = time.perf_counter()
        engine.run_units(units)
        wall = time.perf_counter() - start
        cases.append(
            {
                "workload": "sweep",
                "ports": mode,
                "instr_per_sec": round(total_instructions / wall, 1),
                "wall_seconds": round(wall, 3),
                "units": len(units),
            }
        )
    clear_registries()
    return cases


def bench_pack(name: str, quick: bool, jobs: int, backend: str = "object"):
    """Wall time for one end-to-end experiment-pack run.

    The pack defines its own budget, workloads and variant grid
    (``--quick`` applies its quick overlay); the engine is cold — no
    persistent store, registries cleared — so this measures what
    ``repro-lbic pack run`` actually costs.  Returns the settings used
    and one grid-compatible case record.
    """
    from repro.experiments.packs import load_pack, run_pack

    clear_registries()
    pack = load_pack(name)
    settings = pack.run_settings(quick=quick)
    engine = SimulationEngine(settings, jobs=jobs, store=None)
    start = time.perf_counter()
    run_pack(pack, engine=engine, quick=quick, backend=backend)
    wall = time.perf_counter() - start
    clear_registries()
    units = len(settings.benchmarks) * len(pack.variants)
    timed = settings.instructions * units
    case = {
        "workload": f"pack:{pack.name}",
        "ports": "all-variants",
        "instr_per_sec": round(timed / wall, 1),
        "wall_seconds": round(wall, 3),
        "units": units,
    }
    return settings, case


def git_revision() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None


def load_history(path: Path) -> List[dict]:
    if not path.exists():
        return []
    try:
        history = json.loads(path.read_text())
    except json.JSONDecodeError:
        return []
    return history if isinstance(history, list) else []


def find_baseline(history: List[dict], record: dict) -> Optional[dict]:
    """Most recent prior record with the same measurement conditions."""
    # records written before a key existed read as the key's historical
    # default (flags unset, the object backend)
    keys = {
        "quick": False,
        "instructions": False,
        "cycle_skipping": False,
        "sweep": False,
        "metrics": False,
        "pack": False,
        "backend": "object",
        "warmed_up": False,
    }
    for prior in reversed(history):
        if all(
            prior.get(k, default) == record.get(k, default)
            for k, default in keys.items()
        ):
            return prior
    return None


def check_regression(baseline: dict, record: dict, threshold: float) -> List[str]:
    old = {(c["workload"], c["ports"]): c["instr_per_sec"] for c in baseline["cases"]}
    failures = []
    for case in record["cases"]:
        key = (case["workload"], case["ports"])
        if key not in old or old[key] <= 0:
            continue
        ratio = case["instr_per_sec"] / old[key]
        if ratio < 1.0 - threshold:
            failures.append(
                f"{key[0]} x {key[1]}: {case['instr_per_sec']:.0f} instr/s vs "
                f"{old[key]:.0f} baseline ({(1 - ratio) * 100:.0f}% slower)"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small subset + fewer instructions (CI smoke)")
    parser.add_argument("--instructions", type=int, default=None,
                        help="timed instructions per case (default 20000, quick 10000)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="measurement rounds, best-of (default 3, quick 2)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--sweep", action="store_true",
                        help="benchmark one end-to-end port-model sweep "
                             "(all workloads x all port models through a cold "
                             "engine), amortized vs fresh, instead of the "
                             "per-case grid")
    parser.add_argument("--pack", default=None, metavar="NAME",
                        help="benchmark one end-to-end experiment-pack run "
                             "(cold engine; --quick applies the pack's quick "
                             "overlay; records only compare against runs of "
                             "the same pack)")
    parser.add_argument("--warmup", type=int, default=None,
                        help="sweep warm-up instructions "
                             "(default 30000, quick 6000)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="sweep engine worker processes (default 1)")
    parser.add_argument("--no-skip", dest="skip", action="store_false",
                        help="disable event-horizon cycle skipping")
    parser.add_argument("--backend", choices=("object", "array", "jit"),
                        default="object",
                        help="timing core for the per-case grid (records "
                             "only compare against runs of the same "
                             "backend; results are bit-identical)")
    parser.add_argument("--metrics", action="store_true",
                        help="attach structure-utilization metrics to every "
                             "run (measures the metrics-on overhead; records "
                             "only compare against other --metrics records)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_speed.json")
    parser.add_argument("--check-regression", action="store_true",
                        help="fail if a case regresses vs the last comparable record")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed fractional slowdown for --check-regression")
    parser.add_argument("--note", default="", help="free-text tag for the record")
    args = parser.parse_args(argv)

    if args.pack:
        settings, case = bench_pack(args.pack, args.quick, args.jobs,
                                    backend=args.backend)
        instructions = settings.instructions
        rounds = 1
        measured = [case]
        print(
            f"{case['workload']:>10s} x {case['ports']:<12s}"
            f" {case['wall_seconds']:>8.2f}s wall"
            f"   ({case['instr_per_sec']:,.0f} timed instr/s,"
            f" {case['units']} units)"
        )
    elif args.sweep:
        instructions = args.instructions or (4_000 if args.quick else 20_000)
        warmup = args.warmup if args.warmup is not None else (
            6_000 if args.quick else 30_000
        )
        workloads = SWEEP_QUICK_WORKLOADS if args.quick else SWEEP_WORKLOADS
        rounds = 1
        measured = bench_sweep(
            workloads, instructions, warmup, args.seed, args.jobs,
            backend=args.backend,
        )
        for case in measured:
            print(
                f"{case['workload']:>10s} x {case['ports']:<10s}"
                f" {case['wall_seconds']:>8.2f}s wall"
                f"   ({case['instr_per_sec']:,.0f} timed instr/s,"
                f" {case['units']} units)"
            )
        fresh, amortized = measured[0], measured[1]
        speedup = fresh["wall_seconds"] / amortized["wall_seconds"]
        print(f"sweep amortization speedup: {speedup:.2f}x")
    else:
        instructions = args.instructions or (10_000 if args.quick else 20_000)
        rounds = args.rounds or (2 if args.quick else 3)
        if args.quick:
            cases = QUICK_CASES
        else:
            cases = [(w, p) for w in FULL_WORKLOADS for p in PORT_MODELS]

        measured = []
        for workload, ports in cases:
            case = bench_case(workload, ports, instructions, args.seed, rounds,
                              args.skip, metrics=args.metrics,
                              backend=args.backend)
            measured.append(case)
            print(
                f"{workload:>10s} x {ports:<8s} {case['instr_per_sec']:>10,.0f} instr/s"
                f"   ({case['cycles']:,} cycles, {case['skipped_cycles']:,} skipped)"
            )

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "git_rev": git_revision(),
        "python": platform.python_version(),
        "quick": args.quick,
        "instructions": instructions,
        "rounds": rounds,
        "seed": args.seed,
        "cycle_skipping": args.skip,
        "metrics": args.metrics,
        "backend": args.backend,
        # grid cases run one untimed warm-up pass before the timed
        # rounds (sweep/pack modes time the cold end-to-end cost, so
        # they stay unwarmed); warmed records only gate against other
        # warmed records
        "warmed_up": not (args.sweep or bool(args.pack)),
        "note": args.note,
        "cases": measured,
    }
    if args.sweep:
        record["sweep"] = True
        record["warmup_instructions"] = warmup
        record["jobs"] = args.jobs
        # the engine always runs with cycle skipping on
        record["cycle_skipping"] = True
    if args.pack:
        # written ONLY when a pack was benchmarked: records without the
        # key are legacy grid/sweep runs and must keep matching their
        # own baselines (find_baseline reads a missing key as False)
        record["pack"] = args.pack
        record["warmup_instructions"] = settings.warmup_instructions
        record["jobs"] = args.jobs
        record["seed"] = settings.seed
        record["cycle_skipping"] = True

    history = load_history(args.output)
    baseline = find_baseline(history, record)
    history.append(record)
    args.output.write_text(json.dumps(history, indent=2) + "\n")
    print(f"\nappended record #{len(history)} to {args.output}")

    if args.check_regression:
        if baseline is None:
            print("no comparable baseline record; regression check skipped")
            return 0
        failures = check_regression(baseline, record, args.threshold)
        if failures:
            print(f"\nSPEED REGRESSION (> {args.threshold:.0%} vs {baseline['timestamp']}"
                  f" @ {baseline.get('git_rev')}):")
            for failure in failures:
                print(" ", failure)
            return 1
        print(f"no regression > {args.threshold:.0%} vs {baseline['timestamp']}"
              f" @ {baseline.get('git_rev')}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
